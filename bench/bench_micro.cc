// Framework micro-benchmarks (google-benchmark): the per-component costs
// behind SmartML's phases — meta-feature extraction, KB retrieval, surrogate
// fitting/prediction, SMAC iterations, preprocessing, and single classifier
// fits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/core/smartml.h"
#include "src/data/synthetic.h"
#include "src/kb/knowledge_base.h"
#include "src/metafeatures/metafeatures.h"
#include "src/ml/decision_tree.h"
#include "src/ml/registry.h"
#include "src/preprocess/preprocess.h"
#include "src/tuning/objective.h"
#include "src/tuning/smac.h"

namespace smartml {
namespace {

Dataset BenchDataset(size_t rows, size_t features) {
  SyntheticSpec spec;
  spec.num_instances = rows;
  spec.num_informative = features / 2;
  spec.num_noise = features - features / 2;
  spec.num_classes = 3;
  spec.seed = 11;
  return GenerateSynthetic(spec);
}

void BM_MetaFeatureExtraction(benchmark::State& state) {
  const Dataset d = BenchDataset(static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    auto mf = ExtractMetaFeatures(d);
    benchmark::DoNotOptimize(mf);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(d.NumRows()));
}
BENCHMARK(BM_MetaFeatureExtraction)->Arg(100)->Arg(1000)->Arg(5000);

void BM_KbNomination(benchmark::State& state) {
  KnowledgeBase kb;
  Rng rng(3);
  for (int64_t i = 0; i < state.range(0); ++i) {
    KbRecord record;
    record.dataset_name = "d" + std::to_string(i);
    for (auto& v : record.meta_features) v = rng.Uniform(0, 100);
    for (const char* algo : {"knn", "svm", "rpart"}) {
      KbAlgorithmResult r;
      r.algorithm = algo;
      r.accuracy = rng.Uniform();
      record.results.push_back(r);
    }
    kb.AddRecord(record);
  }
  MetaFeatureVector query{};
  for (auto& v : query) v = rng.Uniform(0, 100);
  NominationOptions options;
  for (auto _ : state) {
    auto nominations = kb.Nominate(query, options);
    benchmark::DoNotOptimize(nominations);
  }
}
BENCHMARK(BM_KbNomination)->Arg(50)->Arg(500)->Arg(5000);

// Synthetic meta-feature vectors with low intrinsic dimension: a few latent
// factors drive all 25 dimensions, like real meta-features (instance and
// feature counts correlate with most derived statistics). Uniform 25-dim
// noise would be adversarial for any spatial index — in truly uniform high-
// dimensional data no axis gap can prune — and is not what KBs of real
// datasets look like.
MetaFeatureVector ClusteredMetaFeatures(Rng& rng,
                                        const double (&loadings)[3][25],
                                        const double (&centers)[8][3]) {
  const size_t cluster = static_cast<size_t>(rng.Uniform(0, 8));
  double factors[3];
  for (size_t f = 0; f < 3; ++f) {
    factors[f] = centers[cluster][f] + 0.3 * rng.Normal();
  }
  MetaFeatureVector mf{};
  for (size_t d = 0; d < kNumMetaFeatures; ++d) {
    for (size_t f = 0; f < 3; ++f) mf[d] += factors[f] * loadings[f][d];
    mf[d] += 0.01 * rng.Normal();
  }
  return mf;
}

struct LookupBenchData {
  KnowledgeBase kb;
  MetaFeatureVector query{};
};

// Built once per size and shared across benchmark re-runs: google-benchmark
// re-enters the function while calibrating iteration counts, and a 100k
// record KB is too expensive to rebuild each time.
const LookupBenchData& LookupBench(int64_t n) {
  static std::map<int64_t, LookupBenchData>* cache =
      new std::map<int64_t, LookupBenchData>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;
  Rng rng(17);
  double loadings[3][25];
  for (auto& row : loadings) {
    for (double& v : row) v = rng.Normal();
  }
  double centers[8][3];
  for (auto& c : centers) {
    for (double& v : c) v = 4.0 * rng.Normal();
  }
  LookupBenchData& data = (*cache)[n];
  for (int64_t i = 0; i < n; ++i) {
    KbRecord record;
    record.dataset_name = "d" + std::to_string(i);
    record.meta_features = ClusteredMetaFeatures(rng, loadings, centers);
    KbAlgorithmResult r;
    r.algorithm = "rf";
    r.accuracy = rng.Uniform();
    record.results.push_back(r);
    data.kb.AddRecord(record);
  }
  // A held-out query from the same distribution (a new dataset resembling
  // known ones — the serving scenario).
  data.query = ClusteredMetaFeatures(rng, loadings, centers);
  return data;
}

// The serving-path lookup against the cached normalized index, pinned to
// the linear scan: one normalizer Apply for the query, distances against
// precomputed vectors, partial_sort on k. This is the A/B baseline the k-d
// tree leg is gated against.
void BM_KbLookupCached(benchmark::State& state) {
  KnowledgeBase kb = LookupBench(state.range(0)).kb;
  kb.SetLookupStrategy(KbLookupStrategy::kLinearScan);
  const MetaFeatureVector query = LookupBench(state.range(0)).query;
  for (auto _ : state) {
    auto neighbors = kb.NearestRecords(query, 3);
    benchmark::DoNotOptimize(neighbors);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KbLookupCached)->Arg(1000)->Arg(10000)->Arg(100000);

// The same lookup through the k-d tree index. Byte-identical results to
// BM_KbLookupCached (tests/kb_index_test.cc holds the equivalence); the
// ratio between the two at 100k records is the sublinear-lookup acceptance
// signal, gated by scripts/bench_gate.py.
void BM_KbLookupKdTree(benchmark::State& state) {
  KnowledgeBase kb = LookupBench(state.range(0)).kb;
  kb.SetLookupStrategy(KbLookupStrategy::kKdTree);
  const MetaFeatureVector query = LookupBench(state.range(0)).query;
  for (auto _ : state) {
    auto neighbors = kb.NearestRecords(query, 3);
    benchmark::DoNotOptimize(neighbors);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KbLookupKdTree)->Arg(1000)->Arg(10000)->Arg(100000);

// The pre-cache baseline: re-normalize every record per lookup and fully
// sort all candidates. Kept as a reference point for the index speedup.
void BM_KbLookupLinearScan(benchmark::State& state) {
  const KnowledgeBase& kb = LookupBench(state.range(0)).kb;
  const std::vector<KbRecord> records = kb.SnapshotRecords();
  MetaFeatureNormalizer normalizer;
  std::vector<MetaFeatureVector> all;
  all.reserve(records.size());
  for (const auto& record : records) all.push_back(record.meta_features);
  normalizer.Fit(all);
  const MetaFeatureVector query = LookupBench(state.range(0)).query;
  for (auto _ : state) {
    const MetaFeatureVector q = normalizer.Apply(query);
    std::vector<std::pair<const KbRecord*, double>> scored;
    scored.reserve(records.size());
    for (const auto& record : records) {
      const MetaFeatureVector normalized = normalizer.Apply(record.meta_features);
      scored.emplace_back(&record, MetaFeatureDistance(q, normalized));
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    if (scored.size() > 3) scored.resize(3);
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KbLookupLinearScan)->Arg(1000)->Arg(10000);

// Shared training table for the tree-growth benchmarks, built once per row
// count (50k rows x 50 features is too expensive to regenerate while
// google-benchmark calibrates). The binned view is prepared here, outside
// the timed region, exactly as the forest/boosting call sites do: the view
// is built once per dataset and shared by every tree.
struct TreeBenchData {
  Matrix x{0, 0};
  TreeSchema schema;
  std::vector<int> y;
  std::shared_ptr<const BinnedColumns> binned;
};

const TreeBenchData& TreeBench(int64_t rows) {
  static std::map<int64_t, TreeBenchData>* cache =
      new std::map<int64_t, TreeBenchData>();
  auto it = cache->find(rows);
  if (it != cache->end()) return it->second;
  const Dataset d = BenchDataset(static_cast<size_t>(rows), 50);
  TreeBenchData& data = (*cache)[rows];
  data.x = d.ToRawMatrix();
  data.schema = TreeSchema::FromDataset(d);
  data.y = d.labels();
  data.binned = d.Binned();
  return data;
}

TreeOptions TreeBenchOptions() {
  // Production-ensemble-like settings (cf. the quantile-binning oracle
  // test): deep enough to stress per-node work, with realistic leaf gates.
  TreeOptions options;
  options.criterion = TreeCriterion::kGini;
  options.max_depth = 14;
  options.min_split = 40;
  options.min_leaf = 20;
  return options;
}

// Exact split search: re-sorts (value, row) pairs per feature per node.
// The correctness oracle and the A/B baseline for histogram growth.
void BM_TreeGrowExact(benchmark::State& state) {
  const TreeBenchData& data = TreeBench(state.range(0));
  TreeOptions options = TreeBenchOptions();
  options.split_mode = TreeSplitMode::kExact;
  for (auto _ : state) {
    DecisionTree tree;
    benchmark::DoNotOptimize(
        tree.Fit(data.x, data.schema, data.y, 3, {}, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeGrowExact)
    ->Arg(5000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// Histogram growth over the shared binned view (per-bin class histograms,
// parent-minus-sibling reuse). The ratio over BM_TreeGrowExact at 50k rows
// is the tentpole acceptance signal, gated by scripts/bench_gate.py (>= 3x).
void BM_TreeGrowHistogram(benchmark::State& state) {
  const TreeBenchData& data = TreeBench(state.range(0));
  TreeOptions options = TreeBenchOptions();
  options.split_mode = TreeSplitMode::kHistogram;
  for (auto _ : state) {
    DecisionTree tree;
    benchmark::DoNotOptimize(
        tree.Fit(data.x, data.schema, data.y, 3, {}, options, data.binned));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeGrowHistogram)
    ->Arg(5000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// The unrolled squared-distance kernel scanned over a KB-sized block of
// 25-dim meta-feature vectors — the inner loop of every neighbour lookup.
void BM_MetaFeatureDistanceScan(benchmark::State& state) {
  Rng rng(29);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> block(n * kNumMetaFeatures);
  for (double& v : block) v = rng.Uniform(-2.0, 2.0);
  std::vector<double> query(kNumMetaFeatures);
  for (double& v : query) v = rng.Uniform(-2.0, 2.0);
  for (auto _ : state) {
    double best = 1e300;
    for (size_t i = 0; i < n; ++i) {
      const double d2 = SquaredDistance(query.data(),
                                        block.data() + i * kNumMetaFeatures,
                                        kNumMetaFeatures);
      if (d2 < best) best = d2;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetaFeatureDistanceScan)->Arg(10000);

void BM_KbSerialize(benchmark::State& state) {
  KnowledgeBase kb;
  Rng rng(3);
  for (int64_t i = 0; i < state.range(0); ++i) {
    KbRecord record;
    record.dataset_name = "d" + std::to_string(i);
    for (auto& v : record.meta_features) v = rng.Uniform();
    KbAlgorithmResult r;
    r.algorithm = "svm";
    r.accuracy = 0.9;
    r.best_config.SetDouble("C", 1.0);
    record.results.push_back(r);
    kb.AddRecord(record);
  }
  for (auto _ : state) {
    const std::string text = kb.Serialize();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_KbSerialize)->Arg(50)->Arg(500);

void BM_SurrogateFit(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<size_t>(state.range(0));
  Matrix x(n, 8);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 8; ++j) x(i, j) = rng.Uniform();
    y[i] = rng.Uniform();
  }
  for (auto _ : state) {
    RegressionForest forest;
    benchmark::DoNotOptimize(forest.Fit(x, y, {}));
  }
}
BENCHMARK(BM_SurrogateFit)->Arg(50)->Arg(200)->Arg(800);

void BM_SurrogatePredict(benchmark::State& state) {
  Rng rng(5);
  Matrix x(200, 8);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < 8; ++j) x(i, j) = rng.Uniform();
    y[i] = rng.Uniform();
  }
  RegressionForest forest;
  (void)forest.Fit(x, y, {});
  std::vector<double> query(8, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(query));
  }
}
BENCHMARK(BM_SurrogatePredict);

void BM_SmacIteration(benchmark::State& state) {
  // Full SMAC runs on a trivial objective: measures optimizer overhead per
  // evaluation (surrogate refit + EI search + bookkeeping).
  class FreeObjective : public TuningObjective {
   public:
    size_t NumFolds() const override { return 1; }
    StatusOr<double> EvaluateFold(const ParamConfig& config, size_t) override {
      const double x = config.GetDouble("x", 0);
      return x * x;
    }
  };
  ParamSpace space;
  space.AddDouble("x", -1, 1, 0.5);
  space.AddDouble("y", -1, 1, 0.5);
  space.AddCategorical("mode", {"a", "b"}, "a");
  for (auto _ : state) {
    FreeObjective objective;
    SmacOptions options;
    options.max_evaluations = static_cast<int>(state.range(0));
    options.seed = 7;
    auto result = Smac(space, &objective, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SmacIteration)->Arg(20)->Arg(60);

void BM_PreprocessPca(benchmark::State& state) {
  const Dataset d = BenchDataset(static_cast<size_t>(state.range(0)), 24);
  for (auto _ : state) {
    auto p = CreatePreprocessor(PreprocessOp::kPca);
    (void)p->Fit(d);
    auto out = p->Transform(d);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PreprocessPca)->Arg(200)->Arg(1000);

void BM_ClassifierFit(benchmark::State& state, const char* name) {
  const Dataset d = BenchDataset(300, 12);
  auto space = SpaceFor(name);
  for (auto _ : state) {
    auto model = CreateClassifier(name);
    benchmark::DoNotOptimize((*model)->Fit(d, space->DefaultConfig()));
  }
}
BENCHMARK_CAPTURE(BM_ClassifierFit, knn, "knn");
BENCHMARK_CAPTURE(BM_ClassifierFit, naive_bayes, "naive_bayes");
BENCHMARK_CAPTURE(BM_ClassifierFit, rpart, "rpart");
BENCHMARK_CAPTURE(BM_ClassifierFit, j48, "j48");
BENCHMARK_CAPTURE(BM_ClassifierFit, lda, "lda");
BENCHMARK_CAPTURE(BM_ClassifierFit, random_forest, "random_forest");
BENCHMARK_CAPTURE(BM_ClassifierFit, svm, "svm");
BENCHMARK_CAPTURE(BM_ClassifierFit, neuralnet, "neuralnet");

// End-to-end 4-candidate run at a given intra-run thread count. Results are
// bit-identical across the Arg values (see ParallelDeterminismTest); the
// speedup of threads=4 over threads=1 is the CI acceptance signal for the
// parallel execution engine (on multi-core runners only — a 1-core machine
// shows parity).
void BM_ParallelEndToEndRun(benchmark::State& state) {
  const Dataset d = BenchDataset(400, 12);
  SmartMlOptions options;
  options.max_evaluations = 16;
  options.cv_folds = 2;
  options.time_budget_seconds = 1e9;
  options.cold_start_algorithms = {"random_forest", "svm", "rpart", "knn"};
  options.enable_ensembling = false;
  options.enable_interpretability = false;
  options.update_kb = false;
  options.num_threads = static_cast<int>(state.range(0));
  SmartML framework(options);
  for (auto _ : state) {
    auto result = framework.Run(d, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ParallelEndToEndRun)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace smartml

BENCHMARK_MAIN();
