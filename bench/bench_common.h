// Shared helpers for the paper-reproduction benches: knowledge-base
// bootstrapping (the paper seeds its KB with 50 public datasets; we use the
// 50 synthetic recipes), table formatting, and common run settings.
#ifndef SMARTML_BENCH_BENCH_COMMON_H_
#define SMARTML_BENCH_BENCH_COMMON_H_

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/smartml.h"
#include "src/data/synthetic.h"

namespace smartml {
namespace bench {

/// Resolves a KB cache filename to a path under the cache directory
/// (`SMARTML_KB_CACHE_DIR`, default "data"), creating the directory on
/// first use so the caches stay out of the repository root.
inline std::string KbCachePath(const std::string& filename) {
  const char* env = std::getenv("SMARTML_KB_CACHE_DIR");
  const std::string dir = (env != nullptr && *env != '\0') ? env : "data";
  ::mkdir(dir.c_str(), 0755);  // EEXIST is fine.
  return dir + "/" + filename;
}

/// Algorithms used when seeding the knowledge base. A diverse but cheap
/// subset keeps bootstrap time reasonable while covering linear,
/// instance-based, probabilistic, and tree-family learners.
inline std::vector<std::string> BootstrapRoster() {
  return {"knn", "naive_bayes", "rpart",     "j48",      "lda",
          "svm", "random_forest", "c50",     "neuralnet"};
}

/// Builds (or loads from `cache_path`, if present) a knowledge base seeded
/// with `num_datasets` bootstrap recipes. Saves to the cache afterwards so
/// sibling benches reuse the work. The save goes through the crash-safe
/// atomic path (tmp + fsync + rename, trailing checksum), so a bench killed
/// mid-save never leaves a torn cache for its siblings; the load side
/// salvages or falls back to `.bak` on a damaged cache instead of silently
/// re-bootstrapping from scratch.
inline KnowledgeBase BootstrapKb(size_t num_datasets,
                                 const std::string& cache_path,
                                 int evaluations_per_algorithm = 6,
                                 bool landmarking = false) {
  if (!cache_path.empty()) {
    auto cached = KnowledgeBase::LoadFromFile(cache_path);
    if (cached.ok() && cached->NumRecords() >= num_datasets &&
        (!landmarking ||
         (cached->NumRecords() > 0 &&
          cached->SnapshotRecords()[0].has_landmarks))) {
      std::fprintf(stderr, "[bench] reusing cached KB (%zu records): %s\n",
                   cached->NumRecords(), cache_path.c_str());
      return std::move(*cached);
    }
  }
  std::fprintf(stderr,
               "[bench] bootstrapping knowledge base from %zu datasets...\n",
               num_datasets);
  SmartMlOptions options;
  options.cv_folds = 2;
  options.seed = 7;
  options.use_landmarking = landmarking;
  SmartML framework(options);
  const auto specs = BootstrapKbSpecs(num_datasets, 7);
  for (size_t i = 0; i < specs.size(); ++i) {
    const Dataset dataset = GenerateSynthetic(specs[i]);
    const Status status = framework.BootstrapWithDataset(
        dataset, BootstrapRoster(), evaluations_per_algorithm);
    if (!status.ok()) {
      std::fprintf(stderr, "[bench] bootstrap of %s failed: %s\n",
                   specs[i].name.c_str(), status.ToString().c_str());
    }
    if ((i + 1) % 10 == 0) {
      std::fprintf(stderr, "[bench]   %zu/%zu datasets done\n", i + 1,
                   specs.size());
    }
  }
  if (!cache_path.empty()) {
    const Status status = framework.SaveKnowledgeBase(cache_path);
    if (!status.ok()) {
      std::fprintf(stderr, "[bench] KB cache save failed: %s\n",
                   status.ToString().c_str());
    }
  }
  return framework.kb();
}

inline void PrintRule(char c = '-', int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace bench
}  // namespace smartml

#endif  // SMARTML_BENCH_BENCH_COMMON_H_
