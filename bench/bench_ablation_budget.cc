// Ablation A: accuracy vs tuning budget (the paper's headline claim is that
// SmartML "outperforms other tools especially at small running time budgets
// by reaching better parameter configurations faster").
//
// Three strategies are swept over increasing fold-evaluation budgets on the
// Table 4 recipes:
//   * SmartML        — meta-learning nomination + warm-started SMAC;
//   * cold SMAC      — the Auto-Weka joint CASH space, no meta-learning;
//   * random search  — the joint CASH space sampled uniformly (Vizier-style);
//   * genetic        — the joint CASH space evolved by a GA (TPOT-style).
// Expected shape: SmartML leads by the widest margin at the smallest
// budgets; the gap narrows as budgets grow.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/autoweka.h"
#include "src/core/smartml.h"

int main(int argc, char** argv) {
  using namespace smartml;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  const std::vector<int> budgets =
      quick ? std::vector<int>{4, 12} : std::vector<int>{4, 8, 16, 32, 64};
  const size_t num_datasets = quick ? 3 : 6;

  KnowledgeBase kb = bench::BootstrapKb(
      quick ? 12 : 50,
      quick ? "" : bench::KbCachePath("smartml_kb_cache.txt"));

  // Evaluation datasets: the first `num_datasets` Table 4 recipes, reseeded
  // so they are not byte-identical to anything in the KB.
  std::vector<Dataset> datasets;
  for (const auto& entry : Table4Datasets()) {
    if (datasets.size() >= num_datasets) break;
    SyntheticSpec spec = entry.spec;
    spec.seed += 900001;
    spec.num_instances = std::min<size_t>(spec.num_instances, 500);
    datasets.push_back(GenerateSynthetic(spec));
  }

  std::printf("Ablation A: mean validation accuracy vs tuning budget "
              "(%zu datasets)\n",
              datasets.size());
  bench::PrintRule('=', 84);
  std::printf("%-22s |", "budget (fold evals)");
  for (int b : budgets) std::printf(" %8d |", b);
  std::printf("\n");
  bench::PrintRule('-', 84);

  auto print_row = [&](const char* label, const std::vector<double>& row) {
    std::printf("%-22s |", label);
    for (double acc : row) std::printf("  %6.2f%% |", acc * 100.0);
    std::printf("\n");
  };

  std::vector<double> smartml_row, cold_row, random_row, genetic_row;
  for (int budget : budgets) {
    double smartml_sum = 0, cold_sum = 0, random_sum = 0, genetic_sum = 0;
    for (const Dataset& dataset : datasets) {
      // SmartML (warm, meta-learning).
      SmartMlOptions options;
      options.max_evaluations = budget;
      options.time_budget_seconds = 60;
      options.cv_folds = 2;
      options.update_kb = false;
      options.enable_interpretability = false;
      options.enable_ensembling = false;
      options.seed = 42;
      SmartML framework(options);
      framework.mutable_kb() = kb;
      auto run = framework.Run(dataset);
      smartml_sum += run.ok() ? run->best_validation_accuracy : 0.0;

      // Cold SMAC over the joint space.
      CashOptions cash;
      cash.max_evaluations = budget;
      cash.time_budget_seconds = 60;
      cash.cv_folds = 2;
      cash.seed = 42;
      auto cold = RunAutoWekaBaseline(dataset, cash);
      cold_sum += cold.ok() ? cold->validation_accuracy : 0.0;

      // Random search over the joint space.
      cash.optimizer = CashOptions::Optimizer::kRandomSearch;
      auto random = RunAutoWekaBaseline(dataset, cash);
      random_sum += random.ok() ? random->validation_accuracy : 0.0;

      // Genetic (TPOT-style) over the joint space.
      cash.optimizer = CashOptions::Optimizer::kGenetic;
      auto genetic = RunAutoWekaBaseline(dataset, cash);
      genetic_sum += genetic.ok() ? genetic->validation_accuracy : 0.0;
    }
    const double n = static_cast<double>(datasets.size());
    smartml_row.push_back(smartml_sum / n);
    cold_row.push_back(cold_sum / n);
    random_row.push_back(random_sum / n);
    genetic_row.push_back(genetic_sum / n);
    std::fprintf(stderr, "[bench] budget %d done\n", budget);
  }

  print_row("SmartML (warm KB)", smartml_row);
  print_row("cold SMAC (CASH)", cold_row);
  print_row("random search (CASH)", random_row);
  print_row("genetic/TPOT (CASH)", genetic_row);
  bench::PrintRule('-', 84);
  std::printf("%-22s |", "SmartML lead vs cold");
  for (size_t i = 0; i < budgets.size(); ++i) {
    std::printf("  %+5.2f%% |", (smartml_row[i] - cold_row[i]) * 100.0);
  }
  std::printf("\n");
  bench::PrintRule('=', 84);
  std::printf("expected shape: the SmartML lead is largest at the smallest "
              "budget and shrinks as the budget grows.\n");
  return 0;
}
