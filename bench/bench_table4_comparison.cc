// Table 4 reproduction: SmartML vs Auto-Weka accuracy on the 10 evaluation
// datasets.
//
// Protocol (mirroring the paper at laptop scale):
//   * the knowledge base is bootstrapped with 50 datasets (synthetic recipes
//     standing in for the paper's OpenML/UCI/Kaggle sets);
//   * each of the 10 Table 4 recipes is processed by (a) SmartML — meta
//     learning nominates 3 algorithms, SMAC tunes them warm-started from the
//     KB — and (b) the Auto-Weka baseline — one cold SMAC run over the joint
//     15-algorithm CASH space;
//   * both systems receive the same fold-evaluation and wall-clock budget
//     and are scored on the same held-out validation partition.
//
// Absolute numbers differ from the paper (different data, budgets measured
// in seconds not 10 minutes); the *shape* to reproduce is SmartML >=
// baseline on most datasets, with the largest wins where the KB contains
// informative neighbours.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/baselines/autoweka.h"
#include "src/core/smartml.h"

int main(int argc, char** argv) {
  using namespace smartml;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  // Small budgets are exactly where the paper positions SmartML ("can
  // outperform other tools especially at small running time budgets").
  const int eval_budget = quick ? 10 : 20;
  const double time_budget = quick ? 6.0 : 25.0;
  const size_t kb_datasets = quick ? 12 : 50;

  KnowledgeBase kb = bench::BootstrapKb(
      kb_datasets,
      quick ? "" : bench::KbCachePath("smartml_kb_cache.txt"));

  std::printf("Table 4: Performance comparison, SmartML vs Auto-Weka\n");
  std::printf("(paper columns = EDBT'19 Table 4 [10-minute budgets, real "
              "datasets]; measured columns = this\n reproduction [synthetic "
              "recipes, %d fold-evaluations / %.0fs per system per dataset, "
              "KB seeded with %zu datasets])\n",
              eval_budget, time_budget, kb_datasets);
  bench::PrintRule('=', 112);
  std::printf("%-14s | %5s | %4s | %6s || %9s | %9s || %9s | %9s | %s\n",
              "dataset", "#att", "#cls", "#inst", "AW paper", "SML paper",
              "AW ours", "SML ours", "winner(ours)");
  bench::PrintRule('-', 112);

  // Seed-averaged protocol: single-seed margins on laptop-scale budgets are
  // dominated by split/optimizer noise, so each system runs under several
  // seeds and the mean accuracies are compared.
  const std::vector<uint64_t> seeds =
      quick ? std::vector<uint64_t>{42} : std::vector<uint64_t>{42, 137, 2025};

  int smartml_wins = 0, ties = 0;
  double sum_gap = 0.0;
  const auto entries = Table4Datasets();
  for (const auto& entry : entries) {
    const Dataset dataset = GenerateSynthetic(entry.spec);

    double aw_acc = 0.0, sml_acc = 0.0;
    StatusOr<SmartMlResult> run = Status::Internal("never ran");
    for (uint64_t seed : seeds) {
      // --- Auto-Weka baseline: joint CASH, cold start. -----------------
      CashOptions cash;
      cash.max_evaluations = eval_budget;
      cash.time_budget_seconds = time_budget;
      cash.cv_folds = 2;
      cash.seed = seed;
      auto baseline = RunAutoWekaBaseline(dataset, cash);
      aw_acc += baseline.ok() ? baseline->validation_accuracy : 0.0;

      // --- SmartML: meta-learning selection + warm-started SMAC. -------
      SmartMlOptions options;
      options.max_evaluations = eval_budget;
      options.time_budget_seconds = time_budget;
      options.cv_folds = 2;
      options.max_nominations = 3;
      options.kb_neighbors = 5;
      options.seed = seed;
      options.update_kb = false;  // Identical KB for every dataset.
      options.enable_interpretability = false;
      SmartML framework(options);
      framework.mutable_kb() = kb;
      run = framework.Run(dataset);
      sml_acc += run.ok() ? run->best_validation_accuracy : 0.0;
    }
    aw_acc /= static_cast<double>(seeds.size());
    sml_acc /= static_cast<double>(seeds.size());

    const double gap = (sml_acc - aw_acc) * 100.0;
    sum_gap += gap;
    const char* winner = gap > 0.1 ? "SmartML" : (gap < -0.1 ? "Auto-Weka" : "tie");
    if (gap > 0.1) {
      ++smartml_wins;
    } else if (gap >= -0.1) {
      ++ties;
    }
    std::printf(
        "%-14s | %5zu | %4zu | %6zu || %9.2f | %9.2f || %9.2f | %9.2f | %s",
        entry.spec.name.c_str(), entry.paper_attributes, entry.paper_classes,
        entry.paper_instances, entry.paper_autoweka_accuracy,
        entry.paper_smartml_accuracy, aw_acc * 100.0, sml_acc * 100.0,
        winner);
    if (run.ok() && run->used_meta_learning) {
      std::printf("  [nominated:");
      for (const auto& n : run->nominations) {
        std::printf(" %s", n.algorithm.c_str());
      }
      std::printf("]");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  bench::PrintRule('=', 112);
  std::printf("paper shape: SmartML wins 10/10 datasets.\n");
  std::printf("measured:    SmartML wins %d/10, ties %d, mean gap %+.2f "
              "accuracy points.\n",
              smartml_wins, ties, sum_gap / 10.0);
  std::printf("shape reproduced (SmartML ahead on a clear majority): %s\n",
              (smartml_wins + ties) >= 7 && smartml_wins >= 5 ? "YES"
                                                              : "PARTIAL");
  return 0;
}
