#!/usr/bin/env sh
# Style gate: fails when clang-format (config in .clang-format) would change
# any C++ file under src/, tests/, or bench/. Run with FIX=1 to apply the
# formatting instead of just checking.
set -eu

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
  echo "format_check: clang-format not installed" >&2
  exit 1
fi

FILES=$(find src tests bench -name '*.cc' -o -name '*.h' | sort)

if [ "${FIX:-0}" = "1" ]; then
  # shellcheck disable=SC2086
  clang-format -i $FILES
  echo "format_check: formatted $(echo "$FILES" | wc -l) files"
  exit 0
fi

STATUS=0
for f in $FILES; do
  if ! clang-format --dry-run -Werror "$f" > /dev/null 2>&1; then
    echo "format_check: needs formatting: $f" >&2
    STATUS=1
  fi
done
if [ "$STATUS" -ne 0 ]; then
  echo "format_check: run 'FIX=1 scripts/format_check.sh' to fix" >&2
fi
exit "$STATUS"
