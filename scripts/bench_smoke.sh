#!/usr/bin/env sh
# Benchmark smoke run for CI: builds bench_micro and runs it with a tiny
# minimum time so the whole sweep finishes in seconds, writing google
# benchmark's JSON to BENCH_ci.json (schema documented in
# docs/OBSERVABILITY.md). The parallel-engine acceptance signal is the
# BM_ParallelEndToEndRun/1 vs /4 real_time ratio on multi-core runners.
#
#   scripts/bench_smoke.sh [build_dir] [output_json]
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_ci.json}"

cmake -B "$BUILD_DIR" -S . ${SMARTML_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_micro

# google-benchmark >= 1.8 wants a unit suffix on min_time; older releases
# reject it. Try the suffixed form first, then fall back.
if ! "$BUILD_DIR"/bench/bench_micro \
    --benchmark_min_time=0.01s \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json; then
  "$BUILD_DIR"/bench/bench_micro \
    --benchmark_min_time=0.01 \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json
fi

echo "bench_smoke: wrote $OUT"
