#!/usr/bin/env sh
# Benchmark smoke run for CI: builds bench_micro and runs it with a tiny
# minimum time so the whole sweep finishes in seconds, writing google
# benchmark's JSON to BENCH_ci.json (schema documented in
# docs/OBSERVABILITY.md). The parallel-engine acceptance signal is the
# BM_ParallelEndToEndRun/1 vs /4 real_time ratio on multi-core runners.
#
#   scripts/bench_smoke.sh [build_dir] [output_json]
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_ci.json}"

cmake -B "$BUILD_DIR" -S . ${SMARTML_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_micro

# google-benchmark >= 1.8 wants a unit suffix on min_time; older releases
# reject it. Try the suffixed form first, then fall back.
if ! "$BUILD_DIR"/bench/bench_micro \
    --benchmark_min_time=0.01s \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json; then
  "$BUILD_DIR"/bench/bench_micro \
    --benchmark_min_time=0.01 \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json
fi

# Surface the KB-lookup speedups: the cached normalized matrix vs the old
# re-normalizing scan, and the k-d tree vs the cached linear scan. The tree
# ratio at 100k records is the acceptance signal for the sublinear lookup
# (>= 5x); fail loudly if the benchmarks went missing from the sweep.
python3 - "$OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

times = {
    b["name"]: b["real_time"]
    for b in data.get("benchmarks", [])
    if b["name"].startswith("BM_KbLookup")
}
missing = [
    name
    for size in (1000, 10000)
    for name in (
        "BM_KbLookupCached/%d" % size,
        "BM_KbLookupLinearScan/%d" % size,
    )
    if name not in times
] + [
    name
    for size in (1000, 10000, 100000)
    for name in ("BM_KbLookupKdTree/%d" % size,)
    if name not in times
] + [
    name
    for name in ("BM_KbLookupCached/100000",)
    if name not in times
]
if missing:
    print("bench_smoke: missing KB-lookup benchmarks: %s" % ", ".join(missing))
    sys.exit(1)

for n in (1000, 10000):
    cached = times["BM_KbLookupCached/%d" % n]
    linear = times["BM_KbLookupLinearScan/%d" % n]
    ratio = linear / cached if cached > 0 else float("inf")
    print(
        "bench_smoke: KB lookup at %5d records: cached %.1fus, "
        "linear scan %.1fus, speedup %.2fx" % (n, cached / 1e3, linear / 1e3, ratio)
    )

for n in (1000, 10000, 100000):
    cached = times["BM_KbLookupCached/%d" % n]
    tree = times["BM_KbLookupKdTree/%d" % n]
    ratio = cached / tree if tree > 0 else float("inf")
    print(
        "bench_smoke: KB lookup at %6d records: linear %.1fus, "
        "k-d tree %.1fus, speedup %.2fx" % (n, cached / 1e3, tree / 1e3, ratio)
    )

# The tentpole acceptance bar: sublinear lookup must beat the linear scan
# by >= 5x at 100k records (the measured margin is far larger; 5x absorbs
# runner noise).
big_ratio = times["BM_KbLookupCached/100000"] / times["BM_KbLookupKdTree/100000"]
if big_ratio < 5.0:
    print(
        "bench_smoke: FAIL k-d tree speedup at 100k records is %.2fx, "
        "expected >= 5x" % big_ratio
    )
    sys.exit(1)
EOF

echo "bench_smoke: wrote $OUT"
