#!/usr/bin/env sh
# Crash-recovery smoke test: kill -9 a rest_server mid-experiment and
# restart it on the same --journal-dir. The journal must bring every
# accepted job back — the mid-flight run resumes from its tuner checkpoint,
# the queued ones re-run in submission order — and idempotent retries must
# keep answering the original job id across the restart.
#
#   scripts/crash_recovery_smoke.sh path/to/build-dir
#
# Exercises the real process-level path (SIGKILL, ephemeral ports, curl)
# rather than the in-process teardown the recovery_test unit suite uses.
set -eu

BUILD_DIR="${1:?usage: crash_recovery_smoke.sh <build-dir>}"
SERVER="$BUILD_DIR/examples/rest_server"
if [ ! -x "$SERVER" ]; then
  echo "crash_recovery_smoke: rest_server not found under $BUILD_DIR" >&2
  exit 1
fi

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

CSV="examples/data/banknotes.csv"
JOURNAL="$WORK/journal"
fail() {
  echo "crash_recovery_smoke: FAIL ($1)" >&2
  exit 1
}

# Starts the server on an ephemeral port; sets SERVER_PID and PORT.
start_server() {
  "$SERVER" --port 0 --journal-dir "$JOURNAL" --job-workers 1 \
    >"$WORK/server.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  i=0
  while [ $i -lt 100 ]; do
    PORT="$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\).*|\1|p' \
      "$WORK/server.log" | head -1)"
    [ -n "$PORT" ] && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup"
    sleep 0.1
    i=$((i + 1))
  done
  fail "server never printed its listening port"
}

# get PATH_SUFFIX -> response body on stdout.
get() { curl -sf "http://127.0.0.1:$PORT$1"; }

# job_field RUN_ID FIELD -> the field's raw JSON value ("" when absent).
job_field() {
  get "/v1/runs/$1" |
    sed -n "s#.*\"$2\":\(\"[^\"]*\"\|[a-z0-9.]*\).*#\1#p" | head -1
}

# Polls until the job reaches FIELD == VALUE or times out. The iteration
# budget (default 300 x 0.2s = 60s) is overridable because sanitizer builds
# run the recovered tuning loop an order of magnitude slower
# (scripts/tier1.sh raises it for the TSan/ASan legs).
WAIT_ITERS="${SMARTML_SMOKE_WAIT_ITERS:-300}"
wait_for() {
  i=0
  while [ "$i" -lt "$WAIT_ITERS" ]; do
    [ "$(job_field "$1" "$2")" = "$3" ] && return 0
    sleep 0.2
    i=$((i + 1))
  done
  fail "$1 never reached $2=$3 (last: $(job_field "$1" "$2"))"
}

# 1. First server generation: one long tuning run (slow_train stretches
#    every fold evaluation so it is reliably mid-flight when killed) and two
#    quick runs queued behind it on the single experiment worker.
SMARTML_FAULT=slow_train:200ms start_server

MID="$(curl -sf -X POST --data-binary @"$CSV" \
  "http://127.0.0.1:$PORT/v1/runs?budget=300&evals=400&nominations=1&name=midflight" |
  sed -n 's|.*"id":"\([^"]*\)".*|\1|p')"
[ -n "$MID" ] || fail "mid-flight submission returned no id"
Q1="$(curl -sf -X POST --data-binary @"$CSV" \
  "http://127.0.0.1:$PORT/v1/runs?budget=5&evals=6&name=queued_one" |
  sed -n 's|.*"id":"\([^"]*\)".*|\1|p')"
Q2="$(curl -sf -X POST --data-binary @"$CSV" \
  "http://127.0.0.1:$PORT/v1/runs?budget=5&evals=6&name=queued_two" |
  sed -n 's|.*"id":"\([^"]*\)".*|\1|p')"
[ -n "$Q1" ] && [ -n "$Q2" ] || fail "queued submissions returned no ids"

# 2. Wait until the long run is tuning (a checkpoint file proves the tuner
#    reached a resumable state), then kill the server without ceremony.
wait_for "$MID" state '"running"'
i=0
while [ "$i" -lt "$WAIT_ITERS" ]; do
  if ls "$JOURNAL/checkpoints/${MID}"*.ckpt >/dev/null 2>&1; then break; fi
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died while tuning"
  sleep 0.2
  i=$((i + 1))
done
ls "$JOURNAL/checkpoints/${MID}"*.ckpt >/dev/null 2>&1 ||
  fail "no tuner checkpoint appeared for $MID"

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# 3. Second generation on the same journal dir (no fault this time, so the
#    backlog drains quickly). Replay must re-admit all three runs.
start_server

wait_for "$MID" state '"done"'
[ "$(job_field "$MID" recovered)" = "true" ] ||
  fail "$MID did not report recovered:true after the restart"
[ "$(job_field "$MID" resumed_from_checkpoint)" = "true" ] ||
  fail "$MID did not resume from its tuner checkpoint"

wait_for "$Q1" state '"done"'
wait_for "$Q2" state '"done"'
[ "$(job_field "$Q1" recovered)" = "true" ] || fail "$Q1 not recovered"
[ "$(job_field "$Q2" recovered)" = "true" ] || fail "$Q2 not recovered"

# Re-admission preserved submission order: the mid-flight run dispatched
# first, then the two queued runs in their original order.
D_MID="$(job_field "$MID" dispatch_sequence)"
D_Q1="$(job_field "$Q1" dispatch_sequence)"
D_Q2="$(job_field "$Q2" dispatch_sequence)"
{ [ "$D_MID" -lt "$D_Q1" ] && [ "$D_Q1" -lt "$D_Q2" ]; } ||
  fail "recovered dispatch order wrong: $D_MID, $D_Q1, $D_Q2"

# 4. The journal and recovery metrics are live on /v1/metrics.
METRICS="$(get /v1/metrics)"
echo "$METRICS" | grep -q "smartml_journal_appends_total" ||
  fail "journal metrics missing from /v1/metrics"
RECOVERED="$(echo "$METRICS" |
  sed -n 's|^smartml_runs_recovered_total \([0-9]*\).*|\1|p')"
[ "${RECOVERED:-0}" -ge 3 ] ||
  fail "smartml_runs_recovered_total=$RECOVERED, expected >= 3"

# 5. Idempotent retries return the original id — also across a restart,
#    because the key is journaled with the admission.
I1="$(curl -sf -X POST -H 'Idempotency-Key: smoke-retry' \
  --data-binary @"$CSV" \
  "http://127.0.0.1:$PORT/v1/runs?budget=5&evals=6&name=idem" |
  sed -n 's|.*"id":"\([^"]*\)".*|\1|p')"
I2="$(curl -sf -X POST -H 'Idempotency-Key: smoke-retry' \
  --data-binary @"$CSV" \
  "http://127.0.0.1:$PORT/v1/runs?budget=5&evals=6&name=idem" |
  sed -n 's|.*"id":"\([^"]*\)".*|\1|p')"
[ "$I1" = "$I2" ] || fail "idempotent retry admitted a duplicate ($I1 vs $I2)"

# 6. The SSE stream advertises a reconnect delay so dropped followers back
#    off sanely (completed runs replay their buffered events and close).
curl -sf --max-time 10 "http://127.0.0.1:$PORT/v1/runs/$Q1/events" |
  grep -q "^retry: " || fail "SSE stream missing the retry: directive"

echo "crash_recovery_smoke: OK"
