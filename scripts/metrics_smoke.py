#!/usr/bin/env python3
"""Tier-1 smoke test for the observability endpoints.

Starts the given rest_server binary on an ephemeral port, drives one tiny
selection-only run through POST /v1/runs, then asserts that

  * GET /v1/metrics returns parseable Prometheus text exposition,
  * smartml_requests_total advanced between two scrapes,
  * the completed GET /v1/runs/{id} body carries the nested span tree.

Usage: scripts/metrics_smoke.py path/to/rest_server
"""

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

CSV = "f1,f2,f3,label\n" + "\n".join(
    "%d,%d,%d,%s" % (i % 7, (i * 3) % 5, i % 2, "a" if i % 2 else "b")
    for i in range(40)
)

# name{labels} value  |  # HELP/TYPE  |  blank
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.inf-]+$"
)


def fetch(url, data=None, method=None):
    request = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.read().decode()


def parse_exposition(text):
    """Validates the format; returns {metric name: sum of sample values}."""
    totals = {}
    for line in text.splitlines():
        if not line or line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if not SAMPLE_RE.match(line):
            raise SystemExit("invalid exposition line: %r" % line)
        name = re.split(r"[{ ]", line, 1)[0]
        totals[name] = totals.get(name, 0.0) + float(line.rsplit(" ", 1)[1])
    return totals


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    server = subprocess.Popen(
        [sys.argv[1], "--port", "0", "--workers", "2", "--job-workers", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        match = None
        deadline = time.time() + 30
        while match is None and time.time() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
        if match is None:
            raise SystemExit("server never reported its port")
        base = "http://127.0.0.1:%s" % match.group(1)

        before = parse_exposition(fetch(base + "/v1/metrics"))

        # One cheap selection-only run, polled to completion.
        submitted = json.loads(
            fetch(
                base + "/v1/runs?name=smoke&selection_only=1",
                data=CSV.encode(),
            )
        )
        job = None
        deadline = time.time() + 60
        while time.time() < deadline:
            job = json.loads(fetch(base + "/v1/runs/" + submitted["id"]))
            if job["state"] in ("done", "failed"):
                break
            time.sleep(0.2)
        if job is None or job["state"] != "done":
            raise SystemExit("run did not finish: %r" % (job,))
        if "trace" not in job.get("result", {}):
            raise SystemExit("completed run result lacks the span tree")
        if not any(
            span["name"] == "preprocess" for span in job["result"]["trace"]
        ):
            raise SystemExit("span tree lacks the preprocess phase")

        after = parse_exposition(fetch(base + "/v1/metrics"))
        for required in (
            "smartml_requests_total",
            "smartml_request_seconds_count",
            "smartml_job_phase_seconds_count",
            "smartml_kb_lookup_seconds_count",
        ):
            if required not in after:
                raise SystemExit("metric missing from scrape: " + required)
        if not after["smartml_requests_total"] > before.get(
            "smartml_requests_total", 0.0
        ):
            raise SystemExit("smartml_requests_total did not advance")
        print("metrics smoke: OK (%d metric families scraped)" % len(after))
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    main()
