#!/usr/bin/env sh
# KB crash-recovery smoke test: a save that dies mid-write (SMARTML_FAULT=
# kb_save_crash) must never leave the knowledge base unloadable.
#
#   scripts/kb_recovery_smoke.sh path/to/build-dir
#
# Uses the kb_tool binary from the given build directory. Exercises the
# real process-level path (env var -> fault point -> torn temp file) rather
# than the in-process SetSpec API the unit tests use.
set -eu

BUILD_DIR="${1:?usage: kb_recovery_smoke.sh <build-dir>}"
KB_TOOL="$BUILD_DIR/examples/kb_tool"
[ -x "$KB_TOOL" ] || KB_TOOL="$BUILD_DIR/kb_tool"
if [ ! -x "$KB_TOOL" ]; then
  echo "kb_recovery_smoke: kb_tool not found under $BUILD_DIR" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
KB="$WORK/kb.txt"

# 1. Seed a small KB through the atomic save path.
"$KB_TOOL" seed "$KB" 6 >/dev/null

# 2. A save under kb_save_crash must fail ...
if SMARTML_FAULT=kb_save_crash "$KB_TOOL" seed "$KB" 9 >/dev/null 2>&1; then
  echo "kb_recovery_smoke: FAIL (save unexpectedly survived kb_save_crash)" >&2
  exit 1
fi

# 3. ... and must not have touched the live file: it still loads, with the
#    pre-crash record count.
"$KB_TOOL" stats "$KB" | grep -q "records: 6" || {
  echo "kb_recovery_smoke: FAIL (live KB damaged by crashed save)" >&2
  exit 1
}

# 4. A later successful save keeps the previous generation as .bak.
"$KB_TOOL" seed "$KB" 9 >/dev/null
[ -f "$KB.bak" ] || {
  echo "kb_recovery_smoke: FAIL (no .bak after overwrite)" >&2
  exit 1
}

# 5. Tear the live file in half; the recovering loader must still come back
#    with a usable KB (salvaged prefix or the .bak copy).
SIZE="$(wc -c <"$KB")"
HALF=$((SIZE / 2))
head -c "$HALF" "$KB" >"$KB.torn" && mv "$KB.torn" "$KB"
"$KB_TOOL" stats "$KB" >/dev/null || {
  echo "kb_recovery_smoke: FAIL (torn KB did not load)" >&2
  exit 1
}

echo "kb_recovery_smoke: OK"
