#!/usr/bin/env python3
"""Tier-1 conformance smoke for the multi-tenant v1 API.

Starts the given rest_server binary on an ephemeral port with a per-tenant
quota of 2 and drives the serving surface end to end:

  * POST /v1/batch admits a 2-dataset batch for one tenant in a single
    scheduler pass (smartml_scheduler_passes_total advances by exactly 1),
  * a further submission from the quota-filled tenant sheds with
    429 + Retry-After and the uniform error envelope,
  * GET /v1/runs/{id}/events streams SSE frames with at least one
    incumbent-improvement event before the terminal event,
  * GET /v1/runs lists the batch's runs under their tenant filter,
  * every response carries an X-Request-Id header, and the removed
    pre-versioning aliases answer with the structured 404 envelope.

Usage: scripts/api_conformance.py path/to/rest_server
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

CSV = "f1,f2,f3,label\n" + "\n".join(
    "%d,%d,%d,%s" % (i % 7, (i * 3) % 5, i % 2, "a" if i % 2 else "b")
    for i in range(40)
)

TENANT = "smoke-tenant"


def fetch(url, data=None, method=None, headers=None):
    """Returns (status, headers, body) without raising on 4xx/5xx."""
    request = urllib.request.Request(
        url, data=data, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read().decode()


def counter(base, name):
    _, _, text = fetch(base + "/v1/metrics")
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.rsplit(" ", 1)[1])
    return 0.0


def wait_done(base, run_id):
    deadline = time.time() + 120
    while time.time() < deadline:
        _, _, body = fetch(base + "/v1/runs/" + run_id)
        state = json.loads(body)["state"]
        if state in ("done", "failed", "cancelled"):
            return state
        time.sleep(0.2)
    raise SystemExit("run %s never reached a terminal state" % run_id)


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    server = subprocess.Popen(
        [
            sys.argv[1],
            "--port", "0",
            "--workers", "2",
            "--job-workers", "1",
            "--max-jobs", "16",
            "--tenant-quota", "2",
            "--budget", "2",
            "--evals", "12",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        # Stretch every fold evaluation so the batch runs are still pending
        # when the quota check fires; without it the tiny dataset finishes in
        # milliseconds and the 429 assertion races run completion.
        env={**os.environ, "SMARTML_FAULT": "slow_train:100ms"},
    )
    try:
        match = None
        deadline = time.time() + 30
        while match is None and time.time() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
        if match is None:
            raise SystemExit("server never reported its port")
        base = "http://127.0.0.1:%s" % match.group(1)

        # Request ids on every response; structured 404 for dropped aliases.
        status, headers, body = fetch(base + "/health")
        if status != 404:
            raise SystemExit("legacy /health should be 404, got %d" % status)
        envelope = json.loads(body)
        if envelope["error"]["code"] != "not_found":
            raise SystemExit("404 lacks the error envelope: %r" % body)
        if not headers.get("X-Request-Id"):
            raise SystemExit("response lacks X-Request-Id")

        # A 2-dataset batch in exactly one scheduler pass.
        passes_before = counter(base, "smartml_scheduler_passes_total")
        batch_request = json.dumps(
            {"items": [{"name": "smoke_%d" % i, "csv": CSV} for i in range(2)]}
        )
        status, headers, body = fetch(
            base + "/v1/batch",
            data=batch_request.encode(),
            headers={"X-Tenant": TENANT},
        )
        if status != 202:
            raise SystemExit("batch submit failed (%d): %s" % (status, body))
        batch = json.loads(body)
        run_ids = [item["id"] for item in batch["items"]]
        if len(run_ids) != 2:
            raise SystemExit("batch admitted %d items, wanted 2" % len(run_ids))
        passes_after = counter(base, "smartml_scheduler_passes_total")
        if passes_after - passes_before != 1.0:
            raise SystemExit(
                "batch took %.0f scheduler passes, wanted 1"
                % (passes_after - passes_before)
            )

        # The tenant is at its quota of 2: the next submission sheds.
        status, headers, body = fetch(
            base + "/v1/runs", data=CSV.encode(), headers={"X-Tenant": TENANT}
        )
        if status != 429:
            raise SystemExit("expected 429 at quota, got %d: %s" % (status, body))
        if "Retry-After" not in headers:
            raise SystemExit("429 lacks Retry-After")
        if json.loads(body)["error"]["code"] != "resource_exhausted":
            raise SystemExit("429 lacks the error envelope: %r" % body)

        # Both runs finish and stream incumbent progress before terminal.
        for run_id in run_ids:
            state = wait_done(base, run_id)
            if state != "done":
                raise SystemExit("run %s finished as %s" % (run_id, state))
            status, headers, stream = fetch(
                base + "/v1/runs/" + run_id + "/events"
            )
            if "text/event-stream" not in headers.get("Content-Type", ""):
                raise SystemExit("events endpoint is not SSE: %r" % headers)
            incumbent = stream.find("event: incumbent")
            terminal = stream.find("event: terminal")
            if incumbent < 0 or terminal < 0 or incumbent > terminal:
                raise SystemExit(
                    "stream for %s lacks incumbent-before-terminal:\n%s"
                    % (run_id, stream)
                )

        # The list endpoint sees both runs under the tenant filter.
        _, _, body = fetch(base + "/v1/runs?tenant=" + TENANT + "&status=done")
        listed = {run["id"] for run in json.loads(body)["runs"]}
        if not set(run_ids) <= listed:
            raise SystemExit("list is missing batch runs: %r" % body)

        print("api conformance: OK (batch=%s runs=%s)" % (batch["id"], run_ids))
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    main()
