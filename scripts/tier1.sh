#!/usr/bin/env sh
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/tier1.sh                 # plain build + ctest (the CI gate)
#   SMARTML_SANITIZE=thread scripts/tier1.sh
#       ThreadSanitizer build; additionally re-runs the concurrency tests
#       (rest_concurrency_test, kb_concurrency_test, events_test,
#       multitenant_test) under TSan so data races in the serving core and
#       the fair-share scheduler fail loudly.
#   SMARTML_SANITIZE=thread,undefined scripts/tier1.sh
#       TSan + UBSan combined (the value is passed to -fsanitize= verbatim).
#
# Both flavours finish with the fault-injection leg: the fault-tolerance
# suite plus the process-level KB crash-recovery smoke test.
#
# The sanitizer build lands in build-<sanitizer>/ so it never invalidates
# the primary build/ tree.
set -eu

cd "$(dirname "$0")/.."

SANITIZE="${SMARTML_SANITIZE:-}"
BUILD_DIR="build${SANITIZE:+-$(echo "$SANITIZE" | tr ',' '-')}"

# Make every sanitizer report fatal rather than a warning. The suppressions
# file silences a known GCC shared-runtime artifact (libubsan's vptr probe
# racing TSan's fd bookkeeping — see scripts/tsan_suppressions.txt); it
# matches sanitizer-internal frames only, so repo races still fail loudly.
TSAN_OPTIONS="halt_on_error=1:history_size=7:suppressions=$(pwd)/scripts/tsan_suppressions.txt${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}"
export TSAN_OPTIONS UBSAN_OPTIONS

# SMARTML_CMAKE_ARGS lets CI inject extra configure flags (e.g. a ccache
# compiler launcher) without teaching this script about each one.
# shellcheck disable=SC2086
cmake -B "$BUILD_DIR" -S . ${SANITIZE:+-DSMARTML_SANITIZE="$SANITIZE"} \
  ${SMARTML_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j"$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)")

case "$SANITIZE" in
  *thread*)
    # Surface the concurrency suites explicitly under the sanitizer.
    # kb_index_test includes the lookups-race-appends k-d tree oracle case;
    # tree_histogram_test races the lazy Dataset::Binned() cache against
    # parallel forest workers sharing one binned view.
    "$BUILD_DIR"/tests/kb_concurrency_test
    "$BUILD_DIR"/tests/tree_histogram_test
    "$BUILD_DIR"/tests/kb_index_test
    "$BUILD_DIR"/tests/rest_concurrency_test
    "$BUILD_DIR"/tests/events_test
    "$BUILD_DIR"/tests/multitenant_test
    "$BUILD_DIR"/tests/obs_test
    "$BUILD_DIR"/tests/pool_test
    "$BUILD_DIR"/tests/recovery_test
    ;;
  *)
    # Live-server smokes: /v1/metrics must serve valid Prometheus exposition
    # with the request counter advancing and the span tree attached to a
    # completed run, and the multi-tenant surface (batch admission, quota
    # 429s, SSE event streams) must conform end to end. A missing
    # interpreter must fail the gate, not silently skip it.
    command -v python3 > /dev/null 2>&1 || {
      echo "tier1: python3 is required for the smoke tests" >&2
      exit 1
    }
    python3 scripts/metrics_smoke.py "$BUILD_DIR"/examples/rest_server
    python3 scripts/api_conformance.py "$BUILD_DIR"/examples/rest_server
    ;;
esac

# Fault-injection leg (both flavours): deterministic failure handling plus
# the kill-mid-save KB recovery path driven through SMARTML_FAULT, and the
# kill-9-the-server job-journal recovery path (queued jobs re-run, the
# mid-flight run resumes from its tuner checkpoint). Sanitizer builds run
# the recovered tuning loop ~15x slower, so give the smoke a bigger poll
# budget there (iterations of 0.2s).
if [ -n "$SANITIZE" ]; then
  SMARTML_SMOKE_WAIT_ITERS="${SMARTML_SMOKE_WAIT_ITERS:-3000}"
  export SMARTML_SMOKE_WAIT_ITERS
fi
"$BUILD_DIR"/tests/fault_tolerance_test
scripts/kb_recovery_smoke.sh "$BUILD_DIR"
scripts/crash_recovery_smoke.sh "$BUILD_DIR"
