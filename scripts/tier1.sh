#!/usr/bin/env sh
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/tier1.sh                 # plain build + ctest (the CI gate)
#   SMARTML_SANITIZE=thread scripts/tier1.sh
#       ThreadSanitizer build; additionally re-runs the concurrency tests
#       (rest_concurrency_test, kb_concurrency_test) under TSan so data
#       races in the serving core fail loudly.
#
# The sanitizer build lands in build-<sanitizer>/ so it never invalidates
# the primary build/ tree.
set -eu

cd "$(dirname "$0")/.."

SANITIZE="${SMARTML_SANITIZE:-}"
BUILD_DIR="build${SANITIZE:+-$SANITIZE}"

cmake -B "$BUILD_DIR" -S . ${SANITIZE:+-DSMARTML_SANITIZE="$SANITIZE"}
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

if [ "$SANITIZE" = "thread" ]; then
  # Surface the concurrency suites explicitly; TSAN_OPTIONS makes any
  # report fatal instead of a warning.
  TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
    "$BUILD_DIR"/tests/kb_concurrency_test
  TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
    "$BUILD_DIR"/tests/rest_concurrency_test
  TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
    "$BUILD_DIR"/tests/obs_test
else
  # Observability smoke: a live server must serve /v1/metrics (valid
  # Prometheus exposition, request counter advancing) and attach the span
  # tree to a completed run.
  python3 scripts/metrics_smoke.py "$BUILD_DIR"/examples/rest_server
fi
