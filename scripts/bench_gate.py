#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares the KB-lookup benchmarks in a fresh google-benchmark JSON run
(BENCH_ci.json from scripts/bench_smoke.sh) against the committed baseline
(bench/BENCH_baseline.json) and fails when a gated benchmark regressed
beyond tolerance.

CI runners are shared and noisy, so the gate is deliberately generous and
scale-free where it can be:

* Ratio gates (primary): the k-d tree speedup over the linear scan at the
  same record count is a within-run ratio — machine speed cancels out. The
  tree must stay >= MIN_KD_SPEEDUP x faster at 100k records (acceptance
  floor for the sublinear lookup) and must never be slower than the scan at
  the smaller sizes.
* Absolute gates (secondary): each gated benchmark may be at most
  MAX_SLOWDOWN x its baseline time. This only trips on order-of-magnitude
  regressions (an accidental O(N) in the tree path, a lost index), not on
  runner jitter.

Usage: bench_gate.py CURRENT_JSON [BASELINE_JSON] [--diff OUT_JSON]

Exit codes: 0 pass, 1 regression, 2 usage/IO error.
"""

import json
import sys

# A gated benchmark may take up to this multiple of its baseline time
# before the gate trips. Generous on purpose: shared CI runners easily
# jitter 2-3x; a broken index regresses 10-100x.
MAX_SLOWDOWN = 4.0
# The tentpole acceptance floor: k-d tree vs linear scan at 100k records.
MIN_KD_SPEEDUP = 5.0
# Histogram tree growth vs exact split search at 50k rows x 50 features.
# Like the k-d tree gate this is a within-run ratio, so machine speed
# cancels out. At 5k rows the histogram path only has to break even (the
# per-node bin sweep has fixed costs that small data does not amortize).
MIN_HIST_SPEEDUP = 3.0

# Benchmarks under the absolute slowdown gate.
GATED = [
    "BM_KbLookupCached/1000",
    "BM_KbLookupCached/10000",
    "BM_KbLookupCached/100000",
    "BM_KbLookupKdTree/1000",
    "BM_KbLookupKdTree/10000",
    "BM_KbLookupKdTree/100000",
    "BM_TreeGrowHistogram/5000",
    "BM_TreeGrowHistogram/50000",
    "BM_MetaFeatureDistanceScan/10000",
]


def load_times(path):
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: float(b["real_time"])
        for b in data.get("benchmarks", [])
        if "real_time" in b
    }


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    diff_path = None
    if "--diff" in argv:
        i = argv.index("--diff")
        if i + 1 >= len(argv):
            print("bench_gate: --diff needs a path", file=sys.stderr)
            return 2
        diff_path = argv[i + 1]
        args = [a for a in args if a != diff_path]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    current_path = args[0]
    baseline_path = args[1] if len(args) > 1 else "bench/BENCH_baseline.json"

    try:
        current = load_times(current_path)
    except (OSError, ValueError) as e:
        print("bench_gate: cannot read %s: %s" % (current_path, e),
              file=sys.stderr)
        return 2
    try:
        baseline = load_times(baseline_path)
    except (OSError, ValueError) as e:
        print("bench_gate: cannot read %s: %s" % (baseline_path, e),
              file=sys.stderr)
        return 2

    failures = []
    rows = []

    # Ratio gates (noise-immune).
    for size, floor in ((1000, 1.0), (10000, 1.0), (100000, MIN_KD_SPEEDUP)):
        linear = current.get("BM_KbLookupCached/%d" % size)
        tree = current.get("BM_KbLookupKdTree/%d" % size)
        if linear is None or tree is None:
            failures.append(
                "missing KB-lookup benchmarks at %d records in %s"
                % (size, current_path))
            continue
        speedup = linear / tree if tree > 0 else float("inf")
        ok = speedup >= floor
        rows.append({
            "check": "kd_speedup/%d" % size,
            "speedup": round(speedup, 2),
            "floor": floor,
            "ok": ok,
        })
        if not ok:
            failures.append(
                "k-d tree speedup at %d records is %.2fx (floor %.1fx)"
                % (size, speedup, floor))

    # Histogram tree-growth ratio gates (same within-run structure as the
    # k-d tree gates above).
    for size, floor in ((5000, 1.0), (50000, MIN_HIST_SPEEDUP)):
        exact = current.get("BM_TreeGrowExact/%d" % size)
        hist = current.get("BM_TreeGrowHistogram/%d" % size)
        if exact is None or hist is None:
            failures.append(
                "missing tree-growth benchmarks at %d rows in %s"
                % (size, current_path))
            continue
        speedup = exact / hist if hist > 0 else float("inf")
        ok = speedup >= floor
        rows.append({
            "check": "hist_speedup/%d" % size,
            "speedup": round(speedup, 2),
            "floor": floor,
            "ok": ok,
        })
        if not ok:
            failures.append(
                "histogram tree-growth speedup at %d rows is %.2fx "
                "(floor %.1fx)" % (size, speedup, floor))

    # Absolute gates against the committed baseline.
    for name in GATED:
        cur = current.get(name)
        base = baseline.get(name)
        if cur is None:
            failures.append("benchmark %s missing from %s" % (name, current_path))
            continue
        if base is None or base <= 0:
            # New benchmark or empty baseline entry: report, don't gate.
            rows.append({"check": name, "current_ns": cur, "baseline_ns": base,
                         "ok": True, "note": "no baseline"})
            continue
        ratio = cur / base
        ok = ratio <= MAX_SLOWDOWN
        rows.append({
            "check": name,
            "current_ns": round(cur, 1),
            "baseline_ns": round(base, 1),
            "ratio": round(ratio, 2),
            "limit": MAX_SLOWDOWN,
            "ok": ok,
        })
        if not ok:
            failures.append(
                "%s regressed %.2fx over baseline (%.0fns -> %.0fns, "
                "limit %.1fx)" % (name, ratio, base, cur, MAX_SLOWDOWN))

    for row in rows:
        status = "ok  " if row["ok"] else "FAIL"
        detail = ", ".join(
            "%s=%s" % (k, v) for k, v in row.items() if k not in ("check", "ok"))
        print("bench_gate: [%s] %-28s %s" % (status, row["check"], detail))

    if diff_path:
        with open(diff_path, "w") as f:
            json.dump({
                "current": current_path,
                "baseline": baseline_path,
                "max_slowdown": MAX_SLOWDOWN,
                "min_kd_speedup": MIN_KD_SPEEDUP,
                "checks": rows,
                "failures": failures,
            }, f, indent=2)
            f.write("\n")
        print("bench_gate: wrote diff to %s" % diff_path)

    if failures:
        for failure in failures:
            print("bench_gate: FAIL %s" % failure, file=sys.stderr)
        return 1
    print("bench_gate: all %d checks passed" % len(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
