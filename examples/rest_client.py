#!/usr/bin/env python3
"""Demonstrates the paper's language-agnostic claim: drive SmartML-cpp from
Python using nothing but its v1 REST API and the standard library.

Experiments run asynchronously: POST /v1/runs answers 202 with a job id
immediately; the client follows the run's Server-Sent Events stream
(GET /v1/runs/{id}/events) for live phase and incumbent-improvement
progress, then fetches the final snapshot from GET /v1/runs/{id}.

Usage:
    ./build/examples/rest_server --port 8080 &
    python3 examples/rest_client.py [--port 8080] [--csv path/to/data.csv]
"""
import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def call(port: int, path: str, body: bytes | None = None,
         method: str | None = None) -> dict | list:
    url = f"http://127.0.0.1:{port}{path}"
    if method is None:
        method = "POST" if body is not None else "GET"
    req = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as err:
        envelope = json.loads(err.read())["error"]
        sys.exit(f"{method} {path} -> {err.code} "
                 f"[{envelope['code']}] {envelope['message']}")


def follow_events(port: int, job_id: str,
                  max_attempts: int = 8) -> None:
    """Follows the job's SSE stream with the standard reconnect protocol.

    A dropped connection (server restart, network blip) is retried with
    exponential backoff, resuming from the last delivered event via the
    Last-Event-ID header. The server's ``retry:`` directive sets the base
    delay, and a ``restart`` event marks a run that survived a server
    restart. Returns once the terminal event arrives (the server closes the
    stream after it).
    """
    url = f"http://127.0.0.1:{port}/v1/runs/{job_id}/events"
    last_event_id = 0
    retry_ms = 2000
    attempt = 0
    while True:
        headers = {}
        if last_event_id:
            headers["Last-Event-ID"] = str(last_event_id)
        try:
            req = urllib.request.Request(url, headers=headers)
            with urllib.request.urlopen(req, timeout=300) as stream:
                attempt = 0  # Connected: reset the backoff.
                terminal = False
                for raw in stream:
                    line = raw.decode().rstrip("\n")
                    if line.startswith("retry: "):
                        retry_ms = int(line[len("retry: "):])
                        continue
                    if line.startswith("id: "):
                        last_event_id = int(line[len("id: "):])
                        continue
                    if not line.startswith("data: "):
                        continue
                    event = json.loads(line[len("data: "):])
                    kind = event.get("type")
                    if kind == "phase":
                        print(f"  [{event['at_seconds']:6.2f}s] phase "
                              f"{event['phase']}")
                    elif kind == "incumbent":
                        print(f"  [{event['at_seconds']:6.2f}s] incumbent "
                              f"{event['algorithm']} cost "
                              f"{event['value']:.4f}")
                    elif kind == "restart":
                        print(f"  [{event['at_seconds']:6.2f}s] restart: "
                              f"{event['message']}")
                    elif kind == "terminal":
                        print(f"  [{event['at_seconds']:6.2f}s] terminal: "
                              f"{event['message']}")
                        terminal = True
                if terminal:
                    return
        except urllib.error.HTTPError as err:
            if err.code == 404:
                raise  # The job is gone; reconnecting won't help.
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            pass
        # The stream ended without a terminal event (or never connected):
        # back off exponentially from the server's retry hint and resume.
        attempt += 1
        if attempt > max_attempts:
            sys.exit(f"giving up on {url} after {max_attempts} reconnects")
        delay = min(30.0, retry_ms / 1000.0 * (2 ** (attempt - 1)))
        print(f"  stream dropped; reconnecting in {delay:.1f}s "
              f"(attempt {attempt}, Last-Event-ID {last_event_id})")
        time.sleep(delay)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--csv", default="examples/data/banknotes.csv")
    parser.add_argument("--budget", default="5")
    args = parser.parse_args()

    health = call(args.port, "/v1/health")
    jobs = health.get("jobs", {})
    print(f"server ok, {health['algorithms']} algorithms, "
          f"{health['kb_records']} KB records, "
          f"{jobs.get('running', 0)} running / {jobs.get('queued', 0)} "
          f"queued jobs")

    algos = call(args.port, "/v1/algorithms")
    print("integrated classifiers:", ", ".join(a["name"] for a in algos))

    with open(args.csv, "rb") as f:
        csv_body = f.read()

    mf = call(args.port, "/v1/metafeatures", csv_body)
    print(f"meta-features: {mf['num_instances']:.0f} rows, "
          f"{mf['num_features']:.0f} features, "
          f"class entropy {mf['class_entropy']:.3f}")

    # Algorithm selection from named meta-features (the paper's
    # "upload only the dataset meta-features file" mode), now structured.
    nominations = call(args.port, "/v1/select",
                       json.dumps({"meta_features": mf}).encode())
    if nominations:
        print("nominated:", ", ".join(n["algorithm"] for n in nominations))
    else:
        print("nominated: (empty knowledge base, server will cold-start)")

    # Submit the experiment as an async job and follow its SSE stream:
    # one long-lived GET replaces the poll loop, and the stream ends on
    # its own after the terminal event.
    submitted = call(args.port,
                     f"/v1/runs?budget={args.budget}&name=py_client",
                     csv_body)
    job_id = submitted["id"]
    print(f"submitted job {job_id}, streaming /v1/runs/{job_id}/events ...")
    follow_events(args.port, job_id)

    job = call(args.port, f"/v1/runs/{job_id}")
    if job["state"] != "done":
        sys.exit(f"job {job_id} ended {job['state']}: {job.get('error')}")

    result = job["result"]
    phases = job["phase_seconds"]
    print(f"best algorithm: {result['best_algorithm']} "
          f"(validation accuracy {result['best_validation_accuracy']:.4f})")
    print("best config:", json.dumps(result["best_config"]))
    print(f"phases: preprocess {phases['preprocessing']:.2f}s, "
          f"selection {phases['selection']:.2f}s, "
          f"tuning {phases['tuning']:.2f}s, output {phases['output']:.2f}s")
    if result.get("importances"):
        top = result["importances"][0]
        print(f"most important feature: {top['feature']} "
              f"({top['importance']:+.4f})")


if __name__ == "__main__":
    main()
