#!/usr/bin/env python3
"""Demonstrates the paper's language-agnostic claim: drive SmartML-cpp from
Python using nothing but its v1 REST API and the standard library.

Experiments run asynchronously: POST /v1/runs answers 202 with a job id
immediately; the client follows the run's Server-Sent Events stream
(GET /v1/runs/{id}/events) for live phase and incumbent-improvement
progress, then fetches the final snapshot from GET /v1/runs/{id}.

Usage:
    ./build/examples/rest_server --port 8080 &
    python3 examples/rest_client.py [--port 8080] [--csv path/to/data.csv]
"""
import argparse
import json
import sys
import urllib.error
import urllib.request


def call(port: int, path: str, body: bytes | None = None,
         method: str | None = None) -> dict | list:
    url = f"http://127.0.0.1:{port}{path}"
    if method is None:
        method = "POST" if body is not None else "GET"
    req = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as err:
        envelope = json.loads(err.read())["error"]
        sys.exit(f"{method} {path} -> {err.code} "
                 f"[{envelope['code']}] {envelope['message']}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--csv", default="examples/data/banknotes.csv")
    parser.add_argument("--budget", default="5")
    args = parser.parse_args()

    health = call(args.port, "/v1/health")
    jobs = health.get("jobs", {})
    print(f"server ok, {health['algorithms']} algorithms, "
          f"{health['kb_records']} KB records, "
          f"{jobs.get('running', 0)} running / {jobs.get('queued', 0)} "
          f"queued jobs")

    algos = call(args.port, "/v1/algorithms")
    print("integrated classifiers:", ", ".join(a["name"] for a in algos))

    with open(args.csv, "rb") as f:
        csv_body = f.read()

    mf = call(args.port, "/v1/metafeatures", csv_body)
    print(f"meta-features: {mf['num_instances']:.0f} rows, "
          f"{mf['num_features']:.0f} features, "
          f"class entropy {mf['class_entropy']:.3f}")

    # Algorithm selection from named meta-features (the paper's
    # "upload only the dataset meta-features file" mode), now structured.
    nominations = call(args.port, "/v1/select",
                       json.dumps({"meta_features": mf}).encode())
    if nominations:
        print("nominated:", ", ".join(n["algorithm"] for n in nominations))
    else:
        print("nominated: (empty knowledge base, server will cold-start)")

    # Submit the experiment as an async job and follow its SSE stream:
    # one long-lived GET replaces the poll loop, and the stream ends on
    # its own after the terminal event.
    submitted = call(args.port,
                     f"/v1/runs?budget={args.budget}&name=py_client",
                     csv_body)
    job_id = submitted["id"]
    print(f"submitted job {job_id}, streaming /v1/runs/{job_id}/events ...")
    events_url = (f"http://127.0.0.1:{args.port}/v1/runs/{job_id}/events")
    with urllib.request.urlopen(events_url, timeout=300) as stream:
        for raw in stream:
            line = raw.decode().rstrip("\n")
            if not line.startswith("data: "):
                continue
            event = json.loads(line[len("data: "):])
            if event["type"] == "phase":
                print(f"  [{event['at_seconds']:6.2f}s] phase "
                      f"{event['phase']}")
            elif event["type"] == "incumbent":
                print(f"  [{event['at_seconds']:6.2f}s] incumbent "
                      f"{event['algorithm']} cost {event['value']:.4f}")
            elif event["type"] == "terminal":
                print(f"  [{event['at_seconds']:6.2f}s] terminal: "
                      f"{event['message']}")

    job = call(args.port, f"/v1/runs/{job_id}")
    if job["state"] != "done":
        sys.exit(f"job {job_id} ended {job['state']}: {job.get('error')}")

    result = job["result"]
    phases = job["phase_seconds"]
    print(f"best algorithm: {result['best_algorithm']} "
          f"(validation accuracy {result['best_validation_accuracy']:.4f})")
    print("best config:", json.dumps(result["best_config"]))
    print(f"phases: preprocess {phases['preprocessing']:.2f}s, "
          f"selection {phases['selection']:.2f}s, "
          f"tuning {phases['tuning']:.2f}s, output {phases['output']:.2f}s")
    if result.get("importances"):
        top = result["importances"][0]
        print(f"most important feature: {top['feature']} "
              f"({top['importance']:+.4f})")


if __name__ == "__main__":
    main()
