#!/usr/bin/env python3
"""Demonstrates the paper's language-agnostic claim: drive SmartML-cpp from
Python using nothing but its REST API and the standard library.

Usage:
    ./build/examples/rest_server --port 8080 &
    python3 examples/rest_client.py [--port 8080] [--csv path/to/data.csv]
"""
import argparse
import json
import urllib.request


def call(port: int, path: str, body: bytes | None = None) -> dict | list:
    url = f"http://127.0.0.1:{port}{path}"
    req = urllib.request.Request(url, data=body,
                                 method="POST" if body is not None else "GET")
    with urllib.request.urlopen(req, timeout=300) as resp:
        return json.loads(resp.read())


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--csv", default="examples/data/banknotes.csv")
    parser.add_argument("--budget", default="5")
    args = parser.parse_args()

    health = call(args.port, "/health")
    print(f"server ok, {health['algorithms']} algorithms, "
          f"{health['kb_records']} KB records")

    algos = call(args.port, "/algorithms")
    print("integrated classifiers:", ", ".join(a["name"] for a in algos))

    with open(args.csv, "rb") as f:
        csv_body = f.read()

    mf = call(args.port, "/metafeatures", csv_body)
    print(f"meta-features: {mf['num_instances']:.0f} rows, "
          f"{mf['num_features']:.0f} features, "
          f"class entropy {mf['class_entropy']:.3f}")

    result = call(args.port, f"/run?budget={args.budget}&name=py_client",
                  csv_body)
    print(f"best algorithm: {result['best_algorithm']} "
          f"(validation accuracy {result['best_validation_accuracy']:.4f})")
    print("best config:", json.dumps(result["best_config"]))
    if result.get("importances"):
        top = result["importances"][0]
        print(f"most important feature: {top['feature']} "
              f"({top['importance']:+.4f})")


if __name__ == "__main__":
    main()
