// interpretability_demo: the paper integrates the `iml` R package "to
// explain for the user the most important features that have been used by
// the selected model". This example trains a model through SmartML, then
// prints permutation importances and an ASCII partial-dependence curve for
// the top feature.
#include <algorithm>
#include <cstdio>

#include "src/core/smartml.h"
#include "src/data/synthetic.h"
#include "src/interpret/interpret.h"

int main() {
  using namespace smartml;

  // Dataset with named informative + noise features so the importance
  // ranking is checkable by eye.
  SyntheticSpec spec;
  spec.name = "interpretability";
  spec.num_instances = 260;
  spec.num_informative = 3;
  spec.num_noise = 3;
  spec.num_classes = 2;
  spec.class_sep = 2.2;
  spec.seed = 17;
  const Dataset dataset = GenerateSynthetic(spec);

  SmartMlOptions options;
  options.max_evaluations = 24;
  options.time_budget_seconds = 10;
  options.cv_folds = 2;
  options.enable_interpretability = true;
  options.enable_ensembling = false;
  SmartML framework(options);
  auto result = framework.Run(dataset);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("selected model: %s (validation accuracy %.2f%%)\n\n",
              result->best_algorithm.c_str(),
              result->best_validation_accuracy * 100);

  std::printf("permutation feature importances (accuracy drop when the "
              "feature is shuffled):\n");
  for (const auto& fi : result->importances) {
    const int bar = std::max(0, static_cast<int>(fi.importance * 200));
    std::printf("  %-10s %+7.4f  ", fi.feature.c_str(), fi.importance);
    for (int i = 0; i < std::min(bar, 50); ++i) std::putchar('#');
    std::putchar('\n');
  }

  // Partial dependence of the most important numeric feature.
  if (!result->importances.empty() && result->best_model != nullptr) {
    const std::string& top = result->importances.front().feature;
    size_t index = dataset.NumFeatures();
    for (size_t f = 0; f < dataset.NumFeatures(); ++f) {
      if (dataset.feature(f).name == top &&
          !dataset.feature(f).is_categorical()) {
        index = f;
      }
    }
    if (index < dataset.NumFeatures()) {
      auto pd = ComputePartialDependence(*result->best_model, dataset, index,
                                         1, 16);
      if (pd.ok()) {
        std::printf("\npartial dependence of P(class=%s) on '%s':\n",
                    dataset.class_names()[1].c_str(), top.c_str());
        for (size_t g = 0; g < pd->grid.size(); ++g) {
          const int bar = static_cast<int>(pd->mean_probability[g] * 48);
          std::printf("  %8.3f | %5.3f ", pd->grid[g],
                      pd->mean_probability[g]);
          for (int i = 0; i < bar; ++i) std::putchar('*');
          std::putchar('\n');
        }
      }
    }
  }
  return 0;
}
