// Quickstart: the full SmartML pipeline (Figure 1 of the paper) on a small
// inline CSV dataset, with the phase trace enabled so each of the five
// phases is visible.
//
//   1. input definition  -> options + CSV parsing
//   2. preprocessing     -> split, imputation, meta-features
//   3. algorithm selection (cold on the first run, meta-learning afterwards)
//   4. hyper-parameter tuning with SMAC
//   5. output + knowledge-base update
#include <cstdio>
#include <sstream>

#include "src/common/logging.h"
#include "src/core/smartml.h"
#include "src/data/csv.h"
#include "src/data/synthetic.h"

int main() {
  using namespace smartml;
  SetLogLevel(LogLevel::kInfo);  // Show the phase trace.

  // --- Phase 1: input definition. A dataset arrives as CSV (the paper's
  // upload screen accepts csv and arff). Here: a tiny synthetic dataset
  // serialized to CSV and parsed back, demonstrating the real input path.
  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_instances = 200;
  spec.num_informative = 4;
  spec.num_categorical = 1;
  spec.num_classes = 2;
  spec.class_sep = 2.0;
  spec.seed = 1;
  const std::string csv_text = WriteCsvString(GenerateSynthetic(spec));
  auto dataset = ReadCsvString(csv_text);
  if (!dataset.ok()) {
    std::fprintf(stderr, "CSV parse failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  dataset->set_name("quickstart");
  std::printf("loaded %zu rows x %zu features, %zu classes from CSV\n",
              dataset->NumRows(), dataset->NumFeatures(),
              dataset->NumClasses());

  // --- Configure the run (the Figure 2 options screen).
  SmartMlOptions options;
  options.time_budget_seconds = 3.0;   // The paper's per-dataset time budget.
  options.max_evaluations = 30;        // Also cap evaluations for speed.
  options.cv_folds = 2;
  options.preprocessing = {PreprocessOp::kZeroVariance};
  options.enable_ensembling = true;
  options.enable_interpretability = true;
  SmartML framework(options);

  // --- First run: the knowledge base is empty, so selection cold-starts.
  auto first = framework.Run(*dataset);
  if (!first.ok()) {
    std::fprintf(stderr, "run failed: %s\n", first.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", first->Report().c_str());

  // --- Second run on a sibling dataset: the KB now has one record, so the
  // meta-learning path activates and SMAC starts from stored configs.
  spec.seed = 2;
  spec.name = "quickstart2";
  auto second = framework.Run(GenerateSynthetic(spec));
  if (!second.ok()) {
    std::fprintf(stderr, "second run failed: %s\n",
                 second.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", second->Report().c_str());
  std::printf("knowledge base now holds %zu dataset records.\n",
              framework.kb().NumRecords());
  return 0;
}
