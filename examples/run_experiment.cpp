// run_experiment: the CLI equivalent of the paper's web interface
// (Figures 2 & 3). Every option of the experiment-configuration screen has a
// flag; the output is the Figure 3-style experiment report.
//
//   run_experiment --dataset data.csv [--target CLASS] [--budget SECONDS]
//                  [--evals N] [--preprocess center,scale,...]
//                  [--selection-only] [--meta-features FILE]
//                  [--no-ensemble] [--no-interpretability]
//                  [--kb FILE] [--nominations K] [--seed S] [--demo]
//
// As in the paper, the user may submit only a meta-features file
// (--meta-features) for selection-only mode, or a full dataset (csv/arff by
// extension). --demo runs on a built-in synthetic dataset.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/api/json.h"
#include "src/common/logging.h"
#include "src/data/describe.h"
#include "src/common/strings.h"
#include "src/core/smartml.h"
#include "src/data/arff.h"
#include "src/data/csv.h"
#include "src/data/synthetic.h"

namespace {

void Usage() {
  std::printf(
      "usage: run_experiment --dataset FILE.{csv,arff} [options]\n"
      "       run_experiment --meta-features FILE --kb FILE   (selection "
      "only)\n"
      "       run_experiment --demo\n\n"
      "options (the Figure 2 configuration screen):\n"
      "  --dataset FILE         csv or arff dataset (class = last column /\n"
      "                         nominal 'class' attribute)\n"
      "  --target NAME          csv target column name\n"
      "  --budget SECONDS       hyper-parameter tuning time budget "
      "(default 5)\n"
      "  --evals N              cap on fold-evaluations (default 40)\n"
      "  --preprocess OPS       comma list: center,scale,range,zv,boxcox,\n"
      "                         yeojohnson,pca,ica\n"
      "  --feature-selection K  none|variance|correlation|infogain\n"
      "  --topk N               keep top-N features (with infogain)\n"
      "  --include A,B,...      explicit feature include list\n"
      "  --selection-only       stop after algorithm selection\n"
      "  --meta-features FILE   25 space-separated values instead of data\n"
      "  --no-ensemble          disable weighted ensembling\n"
      "  --no-interpretability  disable feature-importance output\n"
      "  --kb FILE              load/save the knowledge base here\n"
      "  --out FILE             also write the result as JSON\n"
      "  --metric M             accuracy|macro_f1|kappa|logloss\n"
      "  --landmarking          add landmark meta-features to KB similarity\n"
      "  --ensemble-strategy S  accuracy|softmax|greedy\n"
      "  --nominations K        algorithms to nominate (default 3)\n"
      "  --seed S               random seed (default 42)\n"
      "  --quiet                suppress the phase trace\n"
      "  --demo                 run on a built-in synthetic dataset\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smartml;

  std::string dataset_path, target, kb_path, meta_path, preprocess_list;
  std::string json_out;
  bool selection_only = false, demo = false, quiet = false;
  SmartMlOptions options;
  options.time_budget_seconds = 5.0;
  options.max_evaluations = 40;
  options.cv_folds = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--dataset") {
      dataset_path = next();
    } else if (arg == "--target") {
      target = next();
    } else if (arg == "--budget") {
      options.time_budget_seconds = std::atof(next());
    } else if (arg == "--evals") {
      options.max_evaluations = std::atoi(next());
    } else if (arg == "--preprocess") {
      preprocess_list = next();
    } else if (arg == "--feature-selection") {
      auto kind = ParseFeatureSelectorKind(next());
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      options.feature_selection.kind = *kind;
    } else if (arg == "--topk") {
      options.feature_selection.top_k =
          static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--include") {
      for (const std::string& name : Split(next(), ',')) {
        if (!StripAsciiWhitespace(name).empty()) {
          options.feature_selection.include_features.emplace_back(
              StripAsciiWhitespace(name));
        }
      }
    } else if (arg == "--metric") {
      auto metric = ParseTuneMetric(next());
      if (!metric.ok()) {
        std::fprintf(stderr, "%s\n", metric.status().ToString().c_str());
        return 2;
      }
      options.metric = *metric;
    } else if (arg == "--landmarking") {
      options.use_landmarking = true;
    } else if (arg == "--ensemble-strategy") {
      const std::string strategy = next();
      if (strategy == "accuracy") {
        options.ensemble_strategy =
            SmartMlOptions::EnsembleStrategy::kAccuracyWeighted;
      } else if (strategy == "softmax") {
        options.ensemble_strategy =
            SmartMlOptions::EnsembleStrategy::kSoftmax;
      } else if (strategy == "greedy") {
        options.ensemble_strategy = SmartMlOptions::EnsembleStrategy::kGreedy;
      } else {
        std::fprintf(stderr, "unknown ensemble strategy '%s'\n",
                     strategy.c_str());
        return 2;
      }
    } else if (arg == "--selection-only") {
      selection_only = true;
    } else if (arg == "--meta-features") {
      meta_path = next();
    } else if (arg == "--no-ensemble") {
      options.enable_ensembling = false;
    } else if (arg == "--no-interpretability") {
      options.enable_interpretability = false;
    } else if (arg == "--kb") {
      kb_path = next();
    } else if (arg == "--out") {
      json_out = next();
    } else if (arg == "--nominations") {
      options.max_nominations = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--demo") {
      demo = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (!quiet) SetLogLevel(LogLevel::kInfo);
  options.selection_only = selection_only;

  for (const std::string& name : Split(preprocess_list, ',')) {
    if (StripAsciiWhitespace(name).empty()) continue;
    auto op = ParsePreprocessOp(std::string(StripAsciiWhitespace(name)));
    if (!op.ok()) {
      std::fprintf(stderr, "%s\n", op.status().ToString().c_str());
      return 2;
    }
    options.preprocessing.push_back(*op);
  }

  SmartML framework(options);
  if (!kb_path.empty()) {
    const Status status = framework.LoadKnowledgeBase(kb_path);
    if (status.ok()) {
      std::printf("knowledge base loaded: %zu records\n",
                  framework.kb().NumRecords());
    } else {
      std::printf("starting with an empty knowledge base (%s)\n",
                  status.ToString().c_str());
    }
  }

  // Selection-only from a meta-features file (no dataset upload).
  if (!meta_path.empty()) {
    std::FILE* f = std::fopen(meta_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", meta_path.c_str());
      return 1;
    }
    char buffer[4096];
    const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
    std::fclose(f);
    buffer[n] = '\0';
    auto mf = MetaFeaturesFromString(buffer);
    if (!mf.ok()) {
      std::fprintf(stderr, "%s\n", mf.status().ToString().c_str());
      return 1;
    }
    const auto nominations = framework.SelectAlgorithms(*mf);
    std::printf("==== SmartML algorithm selection (meta-features only) ====\n");
    if (nominations.empty()) {
      std::printf("knowledge base is empty: no nominations.\n");
    }
    for (const auto& nom : nominations) {
      std::printf("  %-14s score %.4f, %zu stored configurations\n",
                  nom.algorithm.c_str(), nom.score,
                  nom.warm_start_configs.size());
    }
    return 0;
  }

  // Load (or synthesize) the dataset.
  Dataset dataset;
  if (demo) {
    SyntheticSpec spec;
    spec.name = "demo";
    spec.num_instances = 250;
    spec.num_informative = 5;
    spec.num_categorical = 1;
    spec.num_classes = 3;
    spec.class_sep = 1.8;
    spec.seed = options.seed;
    dataset = GenerateSynthetic(spec);
  } else if (!dataset_path.empty()) {
    const std::string lower = AsciiToLower(dataset_path);
    if (lower.size() > 5 && lower.rfind(".arff") == lower.size() - 5) {
      auto loaded = ReadArffFile(dataset_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
        return 1;
      }
      dataset = std::move(*loaded);
    } else {
      CsvOptions csv;
      csv.target_column = target;
      auto loaded = ReadCsvFile(dataset_path, csv);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
        return 1;
      }
      dataset = std::move(*loaded);
    }
  } else {
    Usage();
    return 2;
  }
  std::printf("%s\n", DescribeDataset(dataset).c_str());

  auto result = framework.Run(dataset);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", result->Report().c_str());

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f != nullptr) {
      const std::string json = ResultToJson(*result);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("JSON report written to %s\n", json_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
    }
  }

  if (!kb_path.empty()) {
    const Status status = framework.SaveKnowledgeBase(kb_path);
    std::printf("knowledge base %s: %s (%zu records)\n",
                status.ok() ? "saved to" : "NOT saved",
                kb_path.c_str(), framework.kb().NumRecords());
  }
  return 0;
}
