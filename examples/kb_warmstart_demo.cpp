// kb_warmstart_demo: shows the paper's core promise in action — the more
// tasks SmartML runs, the smarter it gets.
//
// Phase 1 (experience): SmartML processes five related tasks with a real
// tuning budget, storing tuned configurations in its knowledge base.
// Phase 2 (payoff): five NEW tasks arrive under a tiny tuning budget. The
// experienced framework (KB warm starts) is compared with an identical
// framework that never saw phase 1 — the difference is pure meta-learning.
#include <cstdio>

#include "src/core/smartml.h"
#include "src/data/synthetic.h"

namespace {

smartml::Dataset MakeTask(int i, const char* prefix) {
  smartml::SyntheticSpec spec;
  spec.name = std::string(prefix) + std::to_string(i);
  spec.num_instances = 220 + 25 * i;
  spec.num_informative = 4 + (i % 3);
  spec.num_noise = 3 + (i % 4);
  spec.num_classes = 3 + (i % 4);
  spec.class_sep = 0.85 + 0.08 * (i % 5);  // Genuinely hard tasks.
  spec.label_noise = 0.08;
  spec.seed = 6000 + i;
  return smartml::GenerateSynthetic(spec);
}

}  // namespace

int main() {
  using namespace smartml;

  SmartMlOptions base;
  base.cv_folds = 2;
  base.enable_interpretability = false;
  base.enable_ensembling = false;

  // --- Phase 1: gain experience with a real budget. --------------------
  SmartMlOptions experience = base;
  experience.max_evaluations = 40;
  SmartML learner(experience);
  std::printf("phase 1: gaining experience on 5 tasks "
              "(40 fold-evaluations each)...\n");
  for (int i = 0; i < 5; ++i) {
    auto result = learner.Run(MakeTask(i, "past"));
    if (result.ok()) {
      std::printf("  %-7s -> %-14s %.2f%%\n", ("past" + std::to_string(i)).c_str(),
                  result->best_algorithm.c_str(),
                  100 * result->best_validation_accuracy);
    }
  }
  std::printf("knowledge base now holds %zu records.\n\n",
              learner.kb().NumRecords());

  // --- Phase 2: new tasks under a tiny budget. --------------------------
  SmartMlOptions tiny = base;
  tiny.max_evaluations = 6;
  learner.mutable_options() = tiny;

  std::printf("phase 2: 5 NEW tasks at a tiny budget "
              "(6 fold-evaluations each):\n\n");
  std::printf("%-8s | %-26s | %-12s | %s\n", "task",
              "selection (experienced)", "acc (exp.)", "acc (fresh)");
  for (int i = 0; i < 64; ++i) std::putchar('-');
  std::putchar('\n');

  double sum_experienced = 0, sum_fresh = 0;
  int completed = 0;
  for (int i = 10; i < 15; ++i) {
    const Dataset task = MakeTask(i, "new");

    auto experienced = learner.Run(task);

    SmartMlOptions fresh_options = tiny;
    fresh_options.update_kb = false;
    SmartML fresh(fresh_options);  // No phase 1 experience.
    auto cold = fresh.Run(task);

    if (!experienced.ok() || !cold.ok()) {
      std::printf("%-8s | run failed\n", task.name().c_str());
      continue;
    }
    sum_experienced += experienced->best_validation_accuracy;
    sum_fresh += cold->best_validation_accuracy;
    ++completed;
    std::printf("%-8s | %-26s | %10.2f%% | %10.2f%%\n", task.name().c_str(),
                experienced->used_meta_learning ? "meta-learning (warm)"
                                                : "cold start",
                100 * experienced->best_validation_accuracy,
                100 * cold->best_validation_accuracy);
  }
  for (int i = 0; i < 64; ++i) std::putchar('-');
  const double denom = completed > 0 ? completed : 1;
  std::printf("\nmean accuracy — experienced: %.2f%%   fresh: %.2f%%   "
              "(gap %+.2f points)\n",
              100 * sum_experienced / denom, 100 * sum_fresh / denom,
              100 * (sum_experienced - sum_fresh) / denom);
  return 0;
}
