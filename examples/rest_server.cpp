// rest_server: the paper's REST API ("programming language agnostic ... can
// be embedded in any programming language using its available REST APIs").
//
//   rest_server [--port P] [--kb FILE] [--budget SECONDS] [--evals N]
//
// Endpoints (see src/api/rest.h):
//   GET  /health   GET /algorithms   GET /kb
//   POST /metafeatures (CSV body)
//   POST /select       (25 meta-feature values body)
//   POST /run[?budget=..&evals=..&selection_only=1] (CSV body)
//
// Try it:
//   ./rest_server --port 8080 &
//   curl localhost:8080/health
//   curl -X POST --data-binary @data.csv 'localhost:8080/run?budget=10'
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/api/rest.h"
#include "src/common/logging.h"

namespace {
smartml::HttpServer* g_server = nullptr;
void HandleSigInt(int) {
  if (g_server != nullptr) g_server->Stop();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace smartml;

  int port = 8080;
  std::string kb_path;
  SmartMlOptions options;
  options.time_budget_seconds = 10;
  options.max_evaluations = 60;
  options.cv_folds = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--kb") {
      kb_path = next();
    } else if (arg == "--budget") {
      options.time_budget_seconds = std::atof(next());
    } else if (arg == "--evals") {
      options.max_evaluations = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  SetLogLevel(LogLevel::kInfo);
  SmartML framework(options);
  if (!kb_path.empty()) {
    const Status status = framework.LoadKnowledgeBase(kb_path);
    std::printf("knowledge base: %s (%zu records)\n",
                status.ok() ? "loaded" : "starting empty",
                framework.kb().NumRecords());
  }

  RestService service(&framework);
  HttpServer server(&service);
  auto bound = server.Bind(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSigInt);
  std::printf("SmartML REST API listening on http://127.0.0.1:%d\n", *bound);
  std::printf("endpoints: GET /health /algorithms /kb; "
              "POST /metafeatures /select /run\n");

  const Status status = server.Serve();
  if (!kb_path.empty()) {
    (void)framework.SaveKnowledgeBase(kb_path);
    std::printf("knowledge base saved to %s (%zu records)\n", kb_path.c_str(),
                framework.kb().NumRecords());
  }
  return status.ok() ? 0 : 1;
}
