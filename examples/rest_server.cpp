// rest_server: the paper's REST API ("programming language agnostic ... can
// be embedded in any programming language using its available REST APIs"),
// served concurrently: a worker pool handles requests while experiments run
// asynchronously on a separate job pool.
//
//   rest_server [--port P] [--kb FILE] [--budget SECONDS] [--evals N]
//               [--workers N] [--job-workers N] [--max-jobs N]
//               [--tenant-quota N] [--tenant-weight NAME=W ...]
//               [--tenant-burst NAME=N | --tenant-burst N]
//               [--journal-dir DIR]
//               [--kb-compact-interval SECONDS] [--kb-max-records N]
//               [--kb-dedup-epsilon E]
//
// v1 endpoints (see docs/API.md and docs/openapi.yaml):
//   GET    /v1/health /v1/metrics /v1/algorithms /v1/kb
//   POST   /v1/metafeatures (CSV body)
//   POST   /v1/select       (JSON body of named meta-features)
//   POST   /v1/runs[?budget=..&evals=..] (CSV body) -> 202 + job id
//   POST   /v1/batch        (JSON body {"items": [...]}) -> 202 + batch id
//   GET    /v1/runs[?status=&tenant=&after=&limit=]
//   GET    /v1/runs/{id}    DELETE /v1/runs/{id}
//   GET    /v1/runs/{id}/events  (SSE progress stream)
//   GET    /v1/batches/{id}
//
// Tenancy: send an X-Tenant header to keep tenants' queues fair-shared;
// --tenant-quota caps each tenant's queued+running jobs (429 beyond it), and
// --tenant-burst grants token-bucket burst credits on top of the quota.
//
// Durability: --journal-dir makes accepted jobs survive a crash or restart.
// Admissions are journaled before they are acknowledged; on startup the
// journal replays, re-queuing interrupted jobs (their tuners resume from
// checkpoints under DIR/checkpoints) and keeping finished ones pollable.
//
// Try it:
//   ./rest_server --port 8080 &
//   curl localhost:8080/v1/health
//   curl -X POST --data-binary @data.csv 'localhost:8080/v1/runs?budget=10'
//   curl -N localhost:8080/v1/runs/run-000001/events
//   curl localhost:8080/v1/runs/run-000001
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/api/job_manager.h"
#include "src/api/rest.h"
#include "src/common/logging.h"

namespace {
smartml::HttpServer* g_server = nullptr;
void HandleSigInt(int) {
  if (g_server != nullptr) g_server->Stop();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace smartml;

  int port = 8080;
  std::string kb_path;
  SmartMlOptions options;
  options.time_budget_seconds = 10;
  options.max_evaluations = 60;
  options.cv_folds = 2;
  HttpServerOptions server_options;
  JobManagerOptions job_options;
  // Background KB compaction (off by default): every interval, merge
  // near-duplicate records and enforce the size cap while serving continues
  // (Compact takes the KB's writer lock only for the pass itself).
  double kb_compact_interval_seconds = 0.0;
  KbCompactionOptions kb_compact_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--kb") {
      kb_path = next();
    } else if (arg == "--budget") {
      options.time_budget_seconds = std::atof(next());
    } else if (arg == "--evals") {
      options.max_evaluations = std::atoi(next());
    } else if (arg == "--workers") {
      server_options.num_workers = std::atoi(next());
    } else if (arg == "--job-workers") {
      job_options.num_workers = std::atoi(next());
    } else if (arg == "--max-jobs") {
      job_options.max_pending_jobs =
          static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--tenant-quota") {
      job_options.default_tenant_quota =
          static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--tenant-weight") {
      // NAME=W, e.g. --tenant-weight team-a=3
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--tenant-weight wants NAME=W, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      job_options.tenant_weights[spec.substr(0, eq)] =
          std::atoi(spec.c_str() + eq + 1);
    } else if (arg == "--tenant-burst") {
      // NAME=N grants one tenant N burst tokens; a bare N sets the default
      // for every tenant.
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        job_options.default_tenant_burst =
            static_cast<size_t>(std::atoi(spec.c_str()));
      } else {
        job_options.tenant_bursts[spec.substr(0, eq)] =
            static_cast<size_t>(std::atoi(spec.c_str() + eq + 1));
      }
    } else if (arg == "--journal-dir") {
      job_options.journal_dir = next();
    } else if (arg == "--kb-compact-interval") {
      kb_compact_interval_seconds = std::atof(next());
    } else if (arg == "--kb-max-records") {
      kb_compact_options.max_records = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--kb-dedup-epsilon") {
      kb_compact_options.dedup_epsilon = std::atof(next());
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  SetLogLevel(LogLevel::kInfo);
  SmartML framework(options);
  if (!kb_path.empty()) {
    const Status status = framework.LoadKnowledgeBase(kb_path);
    std::printf("knowledge base: %s (%zu records)\n",
                status.ok() ? "loaded" : "starting empty",
                framework.kb().NumRecords());
  }

  JobManager jobs(&framework, job_options);
  RestService service(&framework, &jobs);
  HttpServer server(&service, server_options);
  service.set_http_server(&server);
  auto bound = server.Bind(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSigInt);
  std::printf("SmartML REST API listening on http://127.0.0.1:%d "
              "(%d http workers, %d experiment workers)\n",
              *bound, server.num_workers(), jobs.num_workers());
  std::printf("endpoints: GET /v1/health /v1/metrics /v1/algorithms /v1/kb "
              "/v1/runs /v1/runs/{id} /v1/runs/{id}/events /v1/batches/{id}; "
              "POST /v1/metafeatures /v1/select /v1/runs /v1/batch; "
              "DELETE /v1/runs/{id}\n");
  // Scripts parse the listening line from a pipe; don't sit in the stdio
  // buffer until something else fills it.
  std::fflush(stdout);

  // Background compaction: condition_variable (not sleep) so shutdown does
  // not wait out the remainder of an interval.
  std::mutex compactor_mutex;
  std::condition_variable compactor_cv;
  std::atomic<bool> compactor_stop{false};
  std::thread compactor;
  if (kb_compact_interval_seconds > 0.0) {
    compactor = std::thread([&] {
      const auto interval = std::chrono::duration_cast<
          std::chrono::milliseconds>(
          std::chrono::duration<double>(kb_compact_interval_seconds));
      std::unique_lock lock(compactor_mutex);
      while (!compactor_cv.wait_for(lock, interval, [&] {
        return compactor_stop.load();
      })) {
        const KbCompactionStats stats =
            framework.mutable_kb().Compact(kb_compact_options);
        if (stats.merged > 0 || stats.evicted > 0) {
          SMARTML_LOG_INFO << "kb compaction: " << stats.before << " -> "
                           << stats.after << " records (" << stats.merged
                           << " merged, " << stats.evicted << " evicted)";
        }
      }
    });
    std::printf("kb compaction: every %.0fs (epsilon %g, max records %zu)\n",
                kb_compact_interval_seconds, kb_compact_options.dedup_epsilon,
                kb_compact_options.max_records);
    std::fflush(stdout);
  }

  const Status status = server.Serve();
  if (compactor.joinable()) {
    {
      std::lock_guard lock(compactor_mutex);
      compactor_stop = true;
    }
    compactor_cv.notify_all();
    compactor.join();
  }
  if (!kb_path.empty()) {
    (void)framework.SaveKnowledgeBase(kb_path);
    std::printf("knowledge base saved to %s (%zu records)\n", kb_path.c_str(),
                framework.kb().NumRecords());
  }
  return status.ok() ? 0 : 1;
}
