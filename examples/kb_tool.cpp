// kb_tool: inspect, merge, and query SmartML knowledge bases. A deployment
// convenience around the paper's central artifact — teams can pool the
// experience of several SmartML instances by merging their KB files.
//
//   kb_tool stats  kb.txt                  summary statistics
//   kb_tool list   kb.txt                  one line per dataset record
//   kb_tool merge  out.txt in1.txt in2...  merge (best-per-algorithm wins)
//   kb_tool query  kb.txt mf.txt [K]       nominate algorithms for the
//                                          25 meta-features in mf.txt
//   kb_tool json   kb.txt                  dump as JSON
//   kb_tool seed   kb.txt [N]              write a synthetic N-record KB
//                                          (scripted durability smoke tests)
//   kb_tool convert IN OUT [text|binary]   re-encode between the legacy text
//                                          format and the binary snapshot
//   kb_tool compact KB [EPSILON [MAX]]     merge near-duplicates, cap size
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "src/api/json.h"
#include "src/kb/knowledge_base.h"

namespace {

using namespace smartml;

int Stats(const KnowledgeBase& kb) {
  std::printf("records: %zu\n", kb.NumRecords());
  std::map<std::string, std::pair<int, double>> per_algorithm;  // count, best.
  size_t total_results = 0;
  for (const auto& record : kb.SnapshotRecords()) {
    total_results += record.results.size();
    for (const auto& result : record.results) {
      auto& [count, best] = per_algorithm[result.algorithm];
      ++count;
      best = std::max(best, result.accuracy);
    }
  }
  std::printf("stored algorithm results: %zu\n", total_results);
  std::printf("%-16s | %-8s | %s\n", "algorithm", "records", "best acc");
  for (const auto& [algorithm, stats] : per_algorithm) {
    std::printf("%-16s | %-8d | %.4f\n", algorithm.c_str(), stats.first,
                stats.second);
  }
  return 0;
}

int List(const KnowledgeBase& kb) {
  for (const auto& record : kb.SnapshotRecords()) {
    std::string best_algorithm = "-";
    double best = -1;
    for (const auto& result : record.results) {
      if (result.accuracy > best) {
        best = result.accuracy;
        best_algorithm = result.algorithm;
      }
    }
    std::printf("%-24s  %zu algorithms, best %s (%.4f), %g rows x %g feats\n",
                record.dataset_name.c_str(), record.results.size(),
                best_algorithm.c_str(), best, record.meta_features[0],
                record.meta_features[2]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smartml;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: kb_tool {stats|list|json} KB\n"
                 "       kb_tool merge OUT IN1 [IN2 ...]\n"
                 "       kb_tool query KB METAFEATURES_FILE [K]\n"
                 "       kb_tool seed OUT [N]\n"
                 "       kb_tool convert IN OUT [text|binary]\n"
                 "       kb_tool compact KB [EPSILON [MAX_RECORDS]]\n");
    return 2;
  }
  const std::string command = argv[1];

  if (command == "seed") {
    const int n = argc > 3 ? atoi(argv[3]) : 8;
    KnowledgeBase kb;
    for (int i = 0; i < n; ++i) {
      KbRecord record;
      record.dataset_name = "seed_" + std::to_string(i);
      record.meta_features[0] = 100.0 + 10.0 * i;  // num_instances
      record.meta_features[2] = 4.0 + i;           // num_features
      KbAlgorithmResult result;
      result.algorithm = i % 2 == 0 ? "random_forest" : "svm";
      result.accuracy = 0.6 + 0.03 * i;
      result.best_config.SetDouble("C", 1.0 + i);
      record.results.push_back(result);
      kb.AddRecord(record);
    }
    const Status status = kb.SaveToFile(argv[2]);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s with %zu records\n", argv[2], kb.NumRecords());
    return 0;
  }

  if (command == "merge") {
    if (argc < 4) {
      std::fprintf(stderr, "merge needs OUT and at least one IN\n");
      return 2;
    }
    KnowledgeBase merged;
    for (int i = 3; i < argc; ++i) {
      auto kb = KnowledgeBase::LoadFromFile(argv[i]);
      if (!kb.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i],
                     kb.status().ToString().c_str());
        return 1;
      }
      for (const auto& record : kb->SnapshotRecords()) merged.AddRecord(record);
      std::printf("merged %s (%zu records)\n", argv[i], kb->NumRecords());
    }
    const Status status = merged.SaveToFile(argv[2]);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s with %zu records\n", argv[2], merged.NumRecords());
    return 0;
  }

  auto kb = KnowledgeBase::LoadFromFile(argv[2]);
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }
  if (command == "convert") {
    if (argc < 4) {
      std::fprintf(stderr, "convert needs IN and OUT\n");
      return 2;
    }
    // Input format is sniffed by LoadFromFile; only the output format is a
    // choice. Default binary — the migration direction for existing text KBs.
    KbFileFormat format = KbFileFormat::kBinary;
    if (argc > 4) {
      const std::string requested = argv[4];
      if (requested == "text") {
        format = KbFileFormat::kText;
      } else if (requested != "binary") {
        std::fprintf(stderr, "unknown format '%s' (want text|binary)\n",
                     requested.c_str());
        return 2;
      }
    }
    const Status status = kb->SaveToFile(argv[3], format);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s with %zu records (%s)\n", argv[3], kb->NumRecords(),
                format == KbFileFormat::kBinary ? "binary snapshot" : "text");
    return 0;
  }
  if (command == "compact") {
    KbCompactionOptions options;
    if (argc > 3) options.dedup_epsilon = atof(argv[3]);
    if (argc > 4) options.max_records = static_cast<size_t>(atoi(argv[4]));
    const KbCompactionStats stats = kb->Compact(options);
    const Status status = kb->SaveToFile(argv[2]);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("compacted %s: %zu -> %zu records (%zu merged, %zu evicted)\n",
                argv[2], stats.before, stats.after, stats.merged,
                stats.evicted);
    return 0;
  }
  if (command == "stats") return Stats(*kb);
  if (command == "list") return List(*kb);
  if (command == "json") {
    std::printf("%s\n", KbToJson(*kb).c_str());
    return 0;
  }
  if (command == "query") {
    if (argc < 4) {
      std::fprintf(stderr, "query needs a meta-features file\n");
      return 2;
    }
    std::FILE* f = std::fopen(argv[3], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[3]);
      return 1;
    }
    char buffer[4096];
    const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
    std::fclose(f);
    buffer[n] = '\0';
    auto mf = MetaFeaturesFromString(buffer);
    if (!mf.ok()) {
      std::fprintf(stderr, "%s\n", mf.status().ToString().c_str());
      return 1;
    }
    NominationOptions options;
    if (argc > 4) options.max_algorithms = static_cast<size_t>(atoi(argv[4]));
    for (const auto& nomination : kb->Nominate(*mf, options)) {
      std::printf("%-16s score %.4f (%zu warm starts)\n",
                  nomination.algorithm.c_str(), nomination.score,
                  nomination.warm_start_configs.size());
    }
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
