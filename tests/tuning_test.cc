// Tests for the tuning stack: objectives, random/grid search, the regression
// forest surrogate, and SMAC itself.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/data/synthetic.h"
#include "src/ml/knn.h"
#include "src/tuning/objective.h"
#include "src/tuning/random_search.h"
#include "src/tuning/smac.h"

namespace smartml {
namespace {

// A cheap synthetic objective: a smooth 2-D bowl with minimum at
// (x, y) = (0.3, 0.7), identical on every "fold".
class BowlObjective : public TuningObjective {
 public:
  explicit BowlObjective(size_t folds = 3) : folds_(folds) {}
  size_t NumFolds() const override { return folds_; }
  StatusOr<double> EvaluateFold(const ParamConfig& config,
                                size_t fold) override {
    ++evaluations_;
    const double x = config.GetDouble("x", 0.0);
    const double y = config.GetDouble("y", 0.0);
    const double dx = x - 0.3, dy = y - 0.7;
    // Slight per-fold offset keeps racing honest.
    return dx * dx + dy * dy + 0.001 * static_cast<double>(fold);
  }
  size_t evaluations() const { return evaluations_; }

 private:
  size_t folds_;
  size_t evaluations_ = 0;
};

ParamSpace BowlSpace() {
  ParamSpace space;
  space.AddDouble("x", 0.0, 1.0, 0.0);
  space.AddDouble("y", 0.0, 1.0, 0.0);
  return space;
}

// ---------------------------------------------------------------------------
// ClassifierObjective
// ---------------------------------------------------------------------------

TEST(ObjectiveTest, HoldoutModeHasOneFold) {
  SyntheticSpec spec;
  spec.num_instances = 80;
  const Dataset d = GenerateSynthetic(spec);
  KnnClassifier knn;
  auto objective = ClassifierObjective::Create(knn, d, 1, 5);
  ASSERT_TRUE(objective.ok());
  EXPECT_EQ((*objective)->NumFolds(), 1u);
}

TEST(ObjectiveTest, KFoldModeCreatesFolds) {
  SyntheticSpec spec;
  spec.num_instances = 90;
  const Dataset d = GenerateSynthetic(spec);
  KnnClassifier knn;
  auto objective = ClassifierObjective::Create(knn, d, 3, 5);
  ASSERT_TRUE(objective.ok());
  EXPECT_EQ((*objective)->NumFolds(), 3u);
}

TEST(ObjectiveTest, CostInUnitInterval) {
  SyntheticSpec spec;
  spec.num_instances = 100;
  spec.class_sep = 3.0;
  const Dataset d = GenerateSynthetic(spec);
  KnnClassifier knn;
  auto objective = ClassifierObjective::Create(knn, d, 2, 7);
  ASSERT_TRUE(objective.ok());
  auto cost = (*objective)->EvaluateFold(KnnClassifier::Space().DefaultConfig(),
                                         0);
  ASSERT_TRUE(cost.ok());
  EXPECT_GE(*cost, 0.0);
  EXPECT_LE(*cost, 1.0);
  EXPECT_LT(*cost, 0.3);  // Easy problem.
}

TEST(ObjectiveTest, OutOfRangeFoldRejected) {
  SyntheticSpec spec;
  spec.num_instances = 60;
  const Dataset d = GenerateSynthetic(spec);
  KnnClassifier knn;
  auto objective = ClassifierObjective::Create(knn, d, 2, 7);
  ASSERT_TRUE(objective.ok());
  EXPECT_FALSE((*objective)
                   ->EvaluateFold(KnnClassifier::Space().DefaultConfig(), 5)
                   .ok());
}

// ---------------------------------------------------------------------------
// Random search / grid search
// ---------------------------------------------------------------------------

TEST(RandomSearchTest, FindsNearOptimum) {
  BowlObjective objective(1);
  SearchOptions options;
  options.max_evaluations = 200;
  options.seed = 3;
  auto result = RandomSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->best_cost, 0.02);
  EXPECT_NEAR(result->best_config.GetDouble("x", 0), 0.3, 0.25);
}

TEST(RandomSearchTest, RespectsEvaluationBudget) {
  BowlObjective objective(2);
  SearchOptions options;
  options.max_evaluations = 21;
  auto result = RandomSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(objective.evaluations(), 21u);
  EXPECT_EQ(result->num_evaluations, 21u);
}

TEST(RandomSearchTest, WarmStartEvaluatedFirst) {
  BowlObjective objective(1);
  SearchOptions options;
  options.max_evaluations = 1;  // Only the warm start gets evaluated.
  ParamConfig warm;
  warm.SetDouble("x", 0.3);
  warm.SetDouble("y", 0.7);
  options.initial_configs = {warm};
  auto result = RandomSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->best_cost, 1e-9);
}

TEST(RandomSearchTest, TrajectoryIsMonotoneNonIncreasing) {
  BowlObjective objective(1);
  SearchOptions options;
  options.max_evaluations = 60;
  auto result = RandomSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->trajectory.size(); ++i) {
    EXPECT_LE(result->trajectory[i], result->trajectory[i - 1] + 1e-12);
  }
}

TEST(GridSearchTest, CoversTheGrid) {
  BowlObjective objective(1);
  SearchOptions options;
  options.max_evaluations = 10000;
  auto result = GridSearch(BowlSpace(), &objective, options, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(objective.evaluations(), 25u);  // 5 x 5 grid.
  EXPECT_LT(result->best_cost, 0.06);
}

TEST(GridSearchTest, EnumeratesCategoricals) {
  ParamSpace space;
  space.AddCategorical("mode", {"a", "b", "c"}, "a");
  BowlObjective objective(1);
  SearchOptions options;
  options.max_evaluations = 100;
  auto result = GridSearch(space, &objective, options, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(objective.evaluations(), 3u);
}

// ---------------------------------------------------------------------------
// RegressionForest
// ---------------------------------------------------------------------------

TEST(RegressionForestTest, FitsSmoothFunction) {
  Rng rng(5);
  const size_t n = 300;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y[i] = std::sin(3 * x(i, 0)) + x(i, 1) * x(i, 1);
  }
  RegressionForest forest;
  RegressionForest::Options options;
  options.num_trees = 20;
  ASSERT_TRUE(forest.Fit(x, y, options).ok());
  // R^2 on training data should be high.
  double ss_res = 0, ss_tot = 0, mean = 0;
  for (double v : y) mean += v;
  mean /= n;
  for (size_t i = 0; i < n; ++i) {
    const auto p = forest.Predict({x(i, 0), x(i, 1)});
    ss_res += (p.mean - y[i]) * (p.mean - y[i]);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  EXPECT_GT(1.0 - ss_res / ss_tot, 0.8);
}

TEST(RegressionForestTest, VarianceHigherOffData) {
  Rng rng(7);
  const size_t n = 120;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(0.0, 0.4);  // Data only in [0, 0.4].
    y[i] = x(i, 0) + 0.05 * rng.Normal();
  }
  RegressionForest forest;
  ASSERT_TRUE(forest.Fit(x, y, {}).ok());
  const auto near = forest.Predict({0.2});
  EXPECT_TRUE(std::isfinite(near.mean));
  EXPECT_GE(near.variance, 0.0);
}

TEST(RegressionForestTest, RejectsBadInput) {
  RegressionForest forest;
  Matrix x(3, 1);
  EXPECT_FALSE(forest.Fit(x, {1.0, 2.0}, {}).ok());
  EXPECT_FALSE(forest.Fit(Matrix(), {}, {}).ok());
}

// ---------------------------------------------------------------------------
// SMAC
// ---------------------------------------------------------------------------

TEST(SmacTest, FindsNearOptimumOnBowl) {
  BowlObjective objective(1);
  SmacOptions options;
  options.max_evaluations = 120;
  options.seed = 11;
  auto result = Smac(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->best_cost, 0.01);
}

TEST(SmacTest, BeatsRandomSearchOnAverage) {
  // Same budget; SMAC's model-based proposals should reach a lower cost on
  // most seeds of a smooth objective.
  int smac_wins = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    BowlObjective smac_objective(1);
    SmacOptions smac_options;
    smac_options.max_evaluations = 60;
    smac_options.seed = 100 + t;
    auto smac_result = Smac(BowlSpace(), &smac_objective, smac_options);
    ASSERT_TRUE(smac_result.ok());

    BowlObjective rs_objective(1);
    SearchOptions rs_options;
    rs_options.max_evaluations = 60;
    rs_options.seed = 100 + t;
    auto rs_result = RandomSearch(BowlSpace(), &rs_objective, rs_options);
    ASSERT_TRUE(rs_result.ok());

    if (smac_result->best_cost <= rs_result->best_cost) ++smac_wins;
  }
  EXPECT_GE(smac_wins, 3) << "SMAC should win most seeds";
}

TEST(SmacTest, RespectsEvaluationBudget) {
  BowlObjective objective(3);
  SmacOptions options;
  options.max_evaluations = 40;
  auto result = Smac(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(objective.evaluations(), 40u);
  EXPECT_EQ(result->num_evaluations, objective.evaluations());
}

TEST(SmacTest, WarmStartDominatesColdAtTinyBudget) {
  // With a budget of 3 evaluations, a warm start at the optimum must win.
  ParamConfig warm;
  warm.SetDouble("x", 0.3);
  warm.SetDouble("y", 0.7);

  BowlObjective cold_objective(1);
  SmacOptions cold;
  cold.max_evaluations = 3;
  cold.seed = 5;
  auto cold_result = Smac(BowlSpace(), &cold_objective, cold);
  ASSERT_TRUE(cold_result.ok());

  BowlObjective warm_objective(1);
  SmacOptions warm_options;
  warm_options.max_evaluations = 3;
  warm_options.seed = 5;
  warm_options.initial_configs = {warm};
  auto warm_result = Smac(BowlSpace(), &warm_objective, warm_options);
  ASSERT_TRUE(warm_result.ok());

  EXPECT_LT(warm_result->best_cost, cold_result->best_cost);
  EXPECT_LT(warm_result->best_cost, 1e-9);
}

TEST(SmacTest, IntensificationRacesAcrossFolds) {
  BowlObjective objective(4);
  SmacOptions options;
  options.max_evaluations = 80;
  options.seed = 13;
  auto result = Smac(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  // The incumbent must have been measured on multiple folds: best_cost
  // includes the per-fold offsets, so it exceeds the single-fold floor.
  EXPECT_LT(result->best_cost, 0.05);
}

TEST(SmacTest, TrajectoryMonotoneNonIncreasing) {
  BowlObjective objective(2);
  SmacOptions options;
  options.max_evaluations = 60;
  options.seed = 17;
  auto result = Smac(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->trajectory.empty());
  for (size_t i = 1; i < result->trajectory.size(); ++i) {
    EXPECT_LE(result->trajectory[i], result->trajectory[i - 1] + 0.002);
  }
}

TEST(SmacTest, HandlesConditionalSpaces) {
  // A space where y only matters when mode=on; SMAC must still find x=0.3.
  ParamSpace space;
  space.AddDouble("x", 0.0, 1.0, 0.0);
  space.AddCategorical("mode", {"on", "off"}, "off");
  space.AddDouble("y", 0.0, 1.0, 0.5);
  space.Condition("y", "mode", {"on"});

  class CondObjective : public TuningObjective {
   public:
    size_t NumFolds() const override { return 1; }
    StatusOr<double> EvaluateFold(const ParamConfig& config,
                                  size_t) override {
      const double x = config.GetDouble("x", 0.0);
      double cost = (x - 0.3) * (x - 0.3);
      if (config.GetChoice("mode", "off") == "on") {
        const double y = config.GetDouble("y", 0.5);
        cost += 0.5 * (y - 0.9) * (y - 0.9);
      }
      return cost;
    }
  } objective;

  SmacOptions options;
  options.max_evaluations = 80;
  options.seed = 19;
  auto result = Smac(space, &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->best_cost, 0.02);
}

TEST(SmacTest, RejectsNullObjective) {
  SmacOptions options;
  EXPECT_FALSE(Smac(BowlSpace(), nullptr, options).ok());
}

TEST(SmacTest, DeadlineStopsTheRun) {
  // An already-expired deadline: only minimal work may happen.
  BowlObjective objective(2);
  SmacOptions options;
  options.max_evaluations = 100000;
  options.deadline = Deadline::After(0.0);
  auto result = Smac(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(objective.evaluations(), 2u);
}

TEST(RandomSearchTest, DeadlineStopsTheRun) {
  BowlObjective objective(1);
  SearchOptions options;
  options.max_evaluations = 100000;
  options.deadline = Deadline::After(0.0);
  auto result = RandomSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(objective.evaluations(), 1u);
}

TEST(ObjectiveTest, CrashingConfigCostsMaximum) {
  // A config the classifier rejects must evaluate to cost 1.0 rather than
  // aborting the whole tuning run (SMAC must route around bad configs).
  SyntheticSpec spec;
  spec.num_instances = 60;
  const Dataset d = GenerateSynthetic(spec);
  KnnClassifier knn;
  auto objective = ClassifierObjective::Create(knn, d, 1, 3);
  ASSERT_TRUE(objective.ok());
  ParamConfig empty_dataset_trigger;  // k is fine; craft a failing fit via
  // an impossible schema is not reachable here, so emulate with an
  // out-of-range k repaired internally — the contract stays: evaluation
  // never returns an error for config content.
  empty_dataset_trigger.SetInt("k", 1000000);
  auto cost = (*objective)->EvaluateFold(empty_dataset_trigger, 0);
  ASSERT_TRUE(cost.ok());
  EXPECT_GE(*cost, 0.0);
  EXPECT_LE(*cost, 1.0);
}

TEST(SmacTest, ManyDuplicateWarmStartsDeduplicated) {
  BowlObjective objective(2);
  SmacOptions options;
  options.max_evaluations = 10;
  ParamConfig warm;
  warm.SetDouble("x", 0.3);
  warm.SetDouble("y", 0.7);
  options.initial_configs = {warm, warm, warm, warm};
  auto result = Smac(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  // Duplicates share one record: the same (config, fold) pair is never
  // evaluated twice, so with 2 folds the warm start costs at most 2 evals
  // of the total spent.
  EXPECT_LT(result->best_cost, 0.01);
}

TEST(SmacTest, EndToEndOnRealClassifier) {
  SyntheticSpec spec;
  spec.num_instances = 120;
  spec.num_informative = 4;
  spec.class_sep = 1.2;
  spec.seed = 23;
  const Dataset d = GenerateSynthetic(spec);
  KnnClassifier knn;
  auto objective = ClassifierObjective::Create(knn, d, 2, 29);
  ASSERT_TRUE(objective.ok());
  SmacOptions options;
  options.max_evaluations = 30;
  options.seed = 29;
  auto result = Smac(KnnClassifier::Space(), objective->get(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->best_config.GetInt("k", 0), 1);
  EXPECT_LT(result->best_cost, 0.5);
}

}  // namespace
}  // namespace smartml
