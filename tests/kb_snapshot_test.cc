// Binary snapshot hardening: round-trips through the versioned format, then
// systematically damages every region of a multi-section snapshot — header
// bit-flips, per-section payload bit-flips, truncation at every section
// boundary and mid-section — asserting that strict decode rejects each with
// a checksum/truncation error while salvage keeps exactly the undamaged
// records. Also covers the .bak and legacy-text fallbacks in LoadFromFile.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/kb/kb_snapshot.h"
#include "src/kb/knowledge_base.h"
#include "src/persist/snapshot_io.h"

namespace smartml {
namespace {

KbRecord MakeRecord(int i) {
  KbRecord record;
  record.dataset_name = "dataset_" + std::to_string(i);
  for (size_t d = 0; d < kNumMetaFeatures; ++d) {
    record.meta_features[d] = 0.25 * static_cast<double>(i) + 0.01 * d;
  }
  if (i % 2 == 0) {
    record.has_landmarks = true;
    for (size_t l = 0; l < kNumLandmarkers; ++l) {
      record.landmarks[l] = 0.1 * static_cast<double>(i + 1) + 0.05 * l;
    }
  }
  KbAlgorithmResult result;
  result.algorithm = i % 3 == 0 ? "random_forest" : "svm";
  result.accuracy = 0.5 + 0.001 * i;
  result.best_config.SetDouble("C", 1.0 + i);
  record.results.push_back(result);
  return record;
}

std::vector<KbRecord> MakeRecords(int n) {
  std::vector<KbRecord> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(MakeRecord(i));
  return out;
}

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + ".kb";
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(KbSnapshot, RoundTripsAllFields) {
  const auto records = MakeRecords(10);
  const std::string bytes = EncodeKbSnapshot(records);
  ASSERT_TRUE(LooksLikeKbSnapshot(bytes));

  auto decoded = DecodeKbSnapshot(bytes, /*lenient=*/false);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->records.size(), records.size());
  EXPECT_EQ(decoded->dropped_records, 0u);
  for (size_t i = 0; i < records.size(); ++i) {
    const KbRecord& in = records[i];
    const KbRecord& out = decoded->records[i];
    EXPECT_EQ(out.dataset_name, in.dataset_name);
    EXPECT_EQ(out.meta_features, in.meta_features);  // Bit-exact doubles.
    EXPECT_EQ(out.has_landmarks, in.has_landmarks);
    if (in.has_landmarks) EXPECT_EQ(out.landmarks, in.landmarks);
    ASSERT_EQ(out.results.size(), in.results.size());
    EXPECT_EQ(out.results[0].algorithm, in.results[0].algorithm);
    EXPECT_EQ(out.results[0].accuracy, in.results[0].accuracy);
    EXPECT_EQ(out.results[0].best_config.ToString(),
              in.results[0].best_config.ToString());
  }
}

TEST(KbSnapshot, MultiSectionEncodingSplitsAtBoundary) {
  // One over the per-section cap forces a second section.
  const auto records =
      MakeRecords(static_cast<int>(kKbSnapshotRecordsPerSection) + 1);
  const std::string bytes = EncodeKbSnapshot(records);
  auto decoded = DecodeKbSnapshot(bytes, /*lenient=*/false);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->records.size(), records.size());
}

// Damaging any single byte of a section payload must be caught by that
// section's crc: strict rejects with a checksum error, salvage drops the
// whole section (bit-rotten bytes are never trusted).
TEST(KbSnapshot, PayloadBitFlipAnywhereIsRejectedThenSalvaged) {
  const auto records = MakeRecords(12);
  const std::string clean = EncodeKbSnapshot(records);
  // 12 records fit one section: the payload spans [file header 32B +
  // section header 24B, end).
  constexpr size_t kPayloadStart = 32 + 24;

  for (size_t offset = kPayloadStart; offset < clean.size(); offset += 97) {
    std::string damaged = clean;
    damaged[offset] = static_cast<char>(damaged[offset] ^ 0x40);

    auto strict = DecodeKbSnapshot(damaged, /*lenient=*/false);
    ASSERT_FALSE(strict.ok()) << "offset " << offset;
    EXPECT_NE(strict.status().ToString().find("checksum"), std::string::npos)
        << strict.status().ToString();

    auto salvage = DecodeKbSnapshot(damaged, /*lenient=*/true);
    ASSERT_TRUE(salvage.ok()) << salvage.status().ToString();
    // A corrupt section cannot be trusted at all: everything in it drops.
    EXPECT_EQ(salvage->records.size(), 0u) << "offset " << offset;
    EXPECT_EQ(salvage->dropped_records, records.size());
    EXPECT_EQ(salvage->damaged_sections, 1u);
  }
}

// Flips inside the section *header* surface as other kinds of damage (lost
// framing, truncation, record-count mismatch). Strict must reject every one
// of them; salvage must never crash and never fabricate records.
TEST(KbSnapshot, SectionHeaderBitFlipIsAlwaysRejectedInStrictMode) {
  const auto records = MakeRecords(12);
  const std::string clean = EncodeKbSnapshot(records);
  for (size_t offset = 32; offset < 32 + 24; ++offset) {
    std::string damaged = clean;
    damaged[offset] = static_cast<char>(damaged[offset] ^ 0x04);
    auto strict = DecodeKbSnapshot(damaged, /*lenient=*/false);
    EXPECT_FALSE(strict.ok()) << "offset " << offset;
    auto salvage = DecodeKbSnapshot(damaged, /*lenient=*/true);
    if (salvage.ok()) {
      EXPECT_LE(salvage->records.size(), records.size()) << "offset " << offset;
    }
  }
}

TEST(KbSnapshot, BitFlipDamagesOnlyItsOwnSection) {
  // Two sections; a flip in the second leaves the first fully salvageable.
  const int n = static_cast<int>(kKbSnapshotRecordsPerSection) + 7;
  const auto records = MakeRecords(n);
  std::string damaged = EncodeKbSnapshot(records);
  damaged[damaged.size() - 3] ^= 0x10;  // Inside the last section's payload.

  ASSERT_FALSE(DecodeKbSnapshot(damaged, /*lenient=*/false).ok());
  auto salvage = DecodeKbSnapshot(damaged, /*lenient=*/true);
  ASSERT_TRUE(salvage.ok());
  EXPECT_EQ(salvage->records.size(), kKbSnapshotRecordsPerSection);
  EXPECT_EQ(salvage->dropped_records, 7u);
  EXPECT_EQ(salvage->damaged_sections, 1u);
  EXPECT_EQ(salvage->records[0].dataset_name, "dataset_0");
}

TEST(KbSnapshot, HeaderBitFlipIsRejected) {
  const std::string clean = EncodeKbSnapshot(MakeRecords(5));
  for (const size_t offset : {size_t{9}, size_t{13}, size_t{20}}) {
    std::string damaged = clean;
    damaged[offset] = static_cast<char>(damaged[offset] ^ 0x04);
    auto strict = DecodeKbSnapshot(damaged, /*lenient=*/false);
    ASSERT_FALSE(strict.ok()) << "offset " << offset;
  }
}

// Truncation at every point of the file: strict always rejects; salvage
// keeps a whole-record prefix and never crashes or over-reads.
TEST(KbSnapshot, TruncationAtEveryLengthSalvagesAPrefix) {
  const auto records = MakeRecords(12);
  const std::string clean = EncodeKbSnapshot(records);
  auto full = DecodeKbSnapshot(clean, /*lenient=*/false);
  ASSERT_TRUE(full.ok());

  for (size_t keep = 0; keep < clean.size(); keep += 31) {
    const std::string torn = clean.substr(0, keep);
    if (LooksLikeKbSnapshot(torn)) {
      auto strict = DecodeKbSnapshot(torn, /*lenient=*/false);
      EXPECT_FALSE(strict.ok()) << "keep " << keep;
      auto salvage = DecodeKbSnapshot(torn, /*lenient=*/true);
      if (salvage.ok()) {
        // The salvaged prefix must consist of intact leading records.
        ASSERT_LE(salvage->records.size(), records.size());
        for (size_t i = 0; i < salvage->records.size(); ++i) {
          EXPECT_EQ(salvage->records[i].dataset_name,
                    records[i].dataset_name);
        }
        EXPECT_GE(salvage->dropped_records,
                  records.size() - salvage->records.size());
      }
    }
  }
}

TEST(KbSnapshot, KnowledgeBaseSniffsBothFormats) {
  KnowledgeBase kb;
  for (int i = 0; i < 6; ++i) kb.AddRecord(MakeRecord(i));

  // Binary path.
  const std::string binary = EncodeKbSnapshot(kb.SnapshotRecords());
  auto from_binary = KnowledgeBase::Deserialize(binary);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  EXPECT_EQ(from_binary->NumRecords(), 6u);

  // Text path (with its trailing crc line) still parses transparently.
  auto from_text = KnowledgeBase::Deserialize(kb.Serialize());
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_EQ(from_text->NumRecords(), 6u);

  // And the two agree on a lookup. Query from an endpoint: the text format
  // keeps only 10 significant digits, so an exact-tie query could legally
  // reorder tied neighbours there — the binary snapshot is bit-exact.
  const auto q = MakeRecord(0).meta_features;
  const auto a = from_binary->NearestRecords(q, 3);
  const auto b = from_text->NearestRecords(q, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record.dataset_name, b[i].record.dataset_name);
  }
}

TEST(KbSnapshot, TornBinaryFileFallsBackToTextBak) {
  // Main file: torn beyond salvage (header only). .bak: legacy text format.
  // LoadFromFile must sniff both and recover the .bak contents.
  const std::string path = TempPath("kb_snapshot_bak");
  KnowledgeBase kb;
  for (int i = 0; i < 4; ++i) kb.AddRecord(MakeRecord(i));
  WriteAll(path + ".bak", kb.Serialize());

  const std::string binary = EncodeKbSnapshot(kb.SnapshotRecords());
  WriteAll(path, binary.substr(0, 20));  // Mid-header tear: nothing usable.

  auto loaded = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRecords(), 4u);
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

TEST(KbSnapshot, CorruptSectionOnDiskSalvagesIntactSections) {
  const std::string path = TempPath("kb_snapshot_corrupt");
  const int n = static_cast<int>(kKbSnapshotRecordsPerSection) + 5;
  KnowledgeBase kb;
  for (int i = 0; i < n; ++i) kb.AddRecord(MakeRecord(i));
  std::string bytes = EncodeKbSnapshot(kb.SnapshotRecords());
  bytes[bytes.size() - 2] ^= 0x08;  // Bit rot in the final section.
  WriteAll(path, bytes);

  auto loaded = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRecords(), kKbSnapshotRecordsPerSection);
  std::remove(path.c_str());
}

TEST(KbSnapshot, UnsupportedVersionIsRejected) {
  std::string bytes = EncodeKbSnapshot(MakeRecords(2));
  bytes[8] = 9;  // Version field (little-endian u32 right after the magic).
  // Recompute nothing: the header crc now mismatches too, which is fine —
  // both failure modes must reject in strict mode.
  auto strict = DecodeKbSnapshot(bytes, /*lenient=*/false);
  EXPECT_FALSE(strict.ok());
}

}  // namespace
}  // namespace smartml
