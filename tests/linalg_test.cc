// Tests for src/linalg: matrix algebra and factorizations.
#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/matrix.h"

namespace smartml {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromRowsAndAccessors) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3, 5}));
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Transpose) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MultiplyMatrices) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyVector) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<double> v = {1, 0, -1};
  const std::vector<double> out = a.Multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(MatrixTest, AddAndScale) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = a.Scale(2.0).Add(a);
  EXPECT_DOUBLE_EQ(b(1, 1), 12.0);
}

TEST(EigenTest, DiagonalMatrix) {
  const Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  auto eig = EigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(EigenTest, KnownSymmetricMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  auto eig = EigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-9);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-9);
}

TEST(EigenTest, ReconstructsMatrix) {
  const Matrix a =
      Matrix::FromRows({{4, 1, 0.5}, {1, 3, -0.2}, {0.5, -0.2, 2}});
  auto eig = EigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  // A = V diag(values) V^T.
  const size_t n = 3;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) {
        acc += eig->vectors(i, k) * eig->values[k] * eig->vectors(j, k);
      }
      EXPECT_NEAR(acc, a(i, j), 1e-8) << i << "," << j;
    }
  }
}

TEST(EigenTest, VectorsAreOrthonormal) {
  const Matrix a = Matrix::FromRows({{5, 2, 1}, {2, 4, 0}, {1, 0, 3}});
  auto eig = EigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  for (size_t c1 = 0; c1 < 3; ++c1) {
    for (size_t c2 = 0; c2 < 3; ++c2) {
      double dot = 0.0;
      for (size_t r = 0; r < 3; ++r) {
        dot += eig->vectors(r, c1) * eig->vectors(r, c2);
      }
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(EigenTest, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_FALSE(EigenSymmetric(a).ok());
}

TEST(CholeskyTest, SolvesSpdSystem) {
  const Matrix a = Matrix::FromRows({{4, 1}, {1, 3}});
  const std::vector<double> b = {1, 2};
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  EXPECT_NEAR(4 * (*x)[0] + 1 * (*x)[1], 1.0, 1e-10);
  EXPECT_NEAR(1 * (*x)[0] + 3 * (*x)[1], 2.0, 1e-10);
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(CholeskyTest, RidgeRepairsNearSingular) {
  const Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
  EXPECT_TRUE(CholeskySolve(a, {1, 1}, /*ridge=*/0.1).ok());
}

TEST(LuTest, SolvesGeneralSystem) {
  const Matrix a = Matrix::FromRows({{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}});
  const std::vector<double> b = {-8, 0, 3};
  auto x = LuSolve(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < 3; ++j) acc += a(i, j) * (*x)[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(LuTest, RejectsSingular) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(LuSolve(a, {1, 1}).ok());
}

TEST(InverseTest, InverseTimesSelfIsIdentity) {
  const Matrix a = Matrix::FromRows({{2, 1, 0}, {1, 3, 1}, {0, 1, 2}});
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  const Matrix prod = a.Multiply(*inv);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(LogDetTest, MatchesKnownDeterminant) {
  // det([[4,1],[1,3]]) = 11.
  const Matrix a = Matrix::FromRows({{4, 1}, {1, 3}});
  auto ld = LogDetSpd(a);
  ASSERT_TRUE(ld.ok());
  EXPECT_NEAR(*ld, std::log(11.0), 1e-9);
}

TEST(CovarianceTest, KnownCovariance) {
  // Two perfectly correlated columns.
  const Matrix x = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}});
  const Matrix cov = Covariance(x);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-15);
}

TEST(CovarianceTest, ColumnMeans) {
  const Matrix x = Matrix::FromRows({{1, 10}, {3, 20}});
  const std::vector<double> mean = ColumnMeans(x);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 15.0);
}

TEST(VectorOpsTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
}

}  // namespace
}  // namespace smartml
