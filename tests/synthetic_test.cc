// Tests for the synthetic dataset generator family.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/data/synthetic.h"

namespace smartml {
namespace {

TEST(SyntheticTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_instances = 150;
  spec.num_informative = 4;
  spec.num_redundant = 2;
  spec.num_noise = 3;
  spec.num_categorical = 2;
  spec.num_classes = 3;
  const Dataset d = GenerateSynthetic(spec);
  EXPECT_EQ(d.NumRows(), 150u);
  EXPECT_EQ(d.NumFeatures(), 11u);
  EXPECT_EQ(d.NumNumericFeatures(), 9u);
  EXPECT_EQ(d.NumCategoricalFeatures(), 2u);
  EXPECT_EQ(d.NumClasses(), 3u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.num_instances = 60;
  spec.seed = 77;
  const Dataset a = GenerateSynthetic(spec);
  const Dataset b = GenerateSynthetic(spec);
  ASSERT_EQ(a.NumRows(), b.NumRows());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.feature(0).values, b.feature(0).values);
  spec.seed = 78;
  const Dataset c = GenerateSynthetic(spec);
  EXPECT_NE(a.feature(0).values, c.feature(0).values);
}

TEST(SyntheticTest, AllClassesPresent) {
  for (auto kind :
       {SyntheticKind::kGaussianClusters, SyntheticKind::kHypercube,
        SyntheticKind::kSpirals}) {
    SyntheticSpec spec;
    spec.kind = kind;
    spec.num_instances = 200;
    spec.num_classes = 5;
    spec.num_informative = 4;
    const Dataset d = GenerateSynthetic(spec);
    const auto counts = d.ClassCounts();
    for (size_t k = 0; k < 5; ++k) {
      EXPECT_GT(counts[k], 0u) << "kind=" << static_cast<int>(kind);
    }
  }
}

TEST(SyntheticTest, ImbalanceSkewsClassSizes) {
  SyntheticSpec spec;
  spec.num_instances = 400;
  spec.num_classes = 4;
  spec.imbalance = 0.5;
  const Dataset d = GenerateSynthetic(spec);
  const auto counts = d.ClassCounts();
  EXPECT_GT(counts[0], 2 * counts[3]);
}

TEST(SyntheticTest, MissingFractionApproximatelyHonored) {
  SyntheticSpec spec;
  spec.num_instances = 400;
  spec.num_informative = 5;
  spec.missing_fraction = 0.1;
  const Dataset d = GenerateSynthetic(spec);
  const double cells =
      static_cast<double>(d.NumRows() * d.NumFeatures());
  const double ratio = static_cast<double>(d.CountMissing()) / cells;
  EXPECT_NEAR(ratio, 0.1, 0.03);
}

TEST(SyntheticTest, SeparableDataIsActuallySeparable) {
  // Very high class_sep Gaussian blobs: a nearest-centroid rule should be
  // nearly perfect, so average within-class distance << between-class.
  SyntheticSpec spec;
  spec.num_instances = 200;
  spec.num_informative = 3;
  spec.num_classes = 2;
  spec.class_sep = 8.0;
  const Dataset d = GenerateSynthetic(spec);
  // Compute class means on first informative feature set.
  std::vector<double> mean0(3, 0), mean1(3, 0);
  size_t n0 = 0, n1 = 0;
  for (size_t r = 0; r < d.NumRows(); ++r) {
    for (size_t f = 0; f < 3; ++f) {
      if (d.label(r) == 0) {
        mean0[f] += d.feature(f).values[r];
      } else {
        mean1[f] += d.feature(f).values[r];
      }
    }
    (d.label(r) == 0 ? n0 : n1)++;
  }
  double dist = 0;
  for (size_t f = 0; f < 3; ++f) {
    const double diff = mean0[f] / n0 - mean1[f] / n1;
    dist += diff * diff;
  }
  EXPECT_GT(std::sqrt(dist), 4.0);  // Centers far apart vs unit noise.
}

TEST(SyntheticTest, RulesKindProducesAllRequestedClasses) {
  SyntheticSpec spec;
  spec.kind = SyntheticKind::kRules;
  spec.num_instances = 500;
  spec.num_classes = 4;
  spec.num_informative = 5;
  const Dataset d = GenerateSynthetic(spec);
  std::set<int> seen(d.labels().begin(), d.labels().end());
  EXPECT_GE(seen.size(), 3u);  // Rule programs may starve at most one class.
}

TEST(Table4Test, HasTenDatasets) {
  const auto entries = Table4Datasets();
  ASSERT_EQ(entries.size(), 10u);
  std::set<std::string> names;
  for (const auto& e : entries) names.insert(e.spec.name);
  EXPECT_EQ(names.size(), 10u);
  EXPECT_TRUE(names.count("madelon"));
  EXPECT_TRUE(names.count("yeast"));
}

TEST(Table4Test, PaperNumbersMatchTable) {
  for (const auto& e : Table4Datasets()) {
    EXPECT_GT(e.paper_smartml_accuracy, e.paper_autoweka_accuracy)
        << e.spec.name << ": the paper reports SmartML winning on all rows";
  }
}

TEST(Table4Test, RecipesGenerate) {
  for (const auto& e : Table4Datasets()) {
    const Dataset d = GenerateSynthetic(e.spec);
    EXPECT_TRUE(d.Validate().ok()) << e.spec.name;
    EXPECT_EQ(d.NumRows(), e.spec.num_instances) << e.spec.name;
    EXPECT_EQ(d.NumClasses(), e.spec.num_classes) << e.spec.name;
  }
}

TEST(BootstrapSpecsTest, CountAndVariety) {
  const auto specs = BootstrapKbSpecs(50, 7);
  ASSERT_EQ(specs.size(), 50u);
  std::set<std::string> names;
  std::set<size_t> class_counts;
  std::set<int> kinds;
  for (const auto& s : specs) {
    names.insert(s.name);
    class_counts.insert(s.num_classes);
    kinds.insert(static_cast<int>(s.kind));
  }
  EXPECT_EQ(names.size(), 50u);
  EXPECT_GE(class_counts.size(), 5u);
  EXPECT_EQ(kinds.size(), 4u);
}

TEST(BootstrapSpecsTest, DeterministicForSeed) {
  const auto a = BootstrapKbSpecs(10, 3);
  const auto b = BootstrapKbSpecs(10, 3);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i].num_instances, b[i].num_instances);
    EXPECT_EQ(a[i].num_classes, b[i].num_classes);
    EXPECT_DOUBLE_EQ(a[i].class_sep, b[i].class_sep);
  }
}

}  // namespace
}  // namespace smartml
