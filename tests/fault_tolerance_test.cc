// Fault-tolerance tests: cooperative cancellation of running jobs, run
// deadlines returning best-so-far, per-candidate failure isolation, and
// crash-safe knowledge-base persistence — all driven through the
// SMARTML_FAULT fault-injection points (src/common/fault_injection.h).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "src/api/job_manager.h"
#include "src/common/cancellation.h"
#include "src/common/fault_injection.h"
#include "src/core/smartml.h"
#include "src/data/synthetic.h"
#include "src/kb/knowledge_base.h"
#include "src/obs/metrics.h"

namespace smartml {
namespace {

// Every test disarms faults on the way out: FaultInjection is process-global
// and a leaked spec would poison later tests in this binary.
class FaultTolerance : public testing::Test {
 protected:
  void TearDown() override {
    ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
  }

  static Dataset SmallDataset(const std::string& name = "fault_ds") {
    SyntheticSpec spec;
    spec.num_instances = 80;
    spec.class_sep = 2.5;
    spec.seed = 47;
    spec.name = name;
    return GenerateSynthetic(spec);
  }

  static SmartMlOptions FastOptions() {
    SmartMlOptions options;
    options.max_evaluations = 9;
    options.cv_folds = 2;
    options.cold_start_algorithms = {"knn", "rpart"};
    return options;
  }
};

// ---------------------------------------------------------------------------
// Fault-injection spec parsing
// ---------------------------------------------------------------------------

TEST_F(FaultTolerance, SpecParsing) {
  auto& faults = FaultInjection::Instance();
  EXPECT_TRUE(faults.SetSpec("").ok());
  EXPECT_FALSE(faults.AnyArmed());
  EXPECT_FALSE(faults.ShouldFire("kb_save_crash"));

  EXPECT_TRUE(faults.SetSpec("kb_save_crash,slow_train:50ms").ok());
  EXPECT_TRUE(faults.AnyArmed());
  EXPECT_TRUE(faults.ShouldFire("kb_save_crash"));
  EXPECT_FALSE(faults.ShouldFire("tuner_throw"));
  EXPECT_NEAR(faults.DelaySeconds("slow_train"), 0.05, 1e-9);

  EXPECT_TRUE(faults.SetSpec("tuner_throw:1.5s").ok());
  EXPECT_NEAR(faults.DelaySeconds("tuner_throw"), 1.5, 1e-9);

  // Probability 0 never fires; 1 always fires.
  EXPECT_TRUE(faults.SetSpec("tuner_throw:0").ok());
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(faults.ShouldFire("tuner_throw"));
  EXPECT_TRUE(faults.SetSpec("tuner_throw:1").ok());
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(faults.ShouldFire("tuner_throw"));

  // Count-limited: fires on exactly the first N calls.
  EXPECT_TRUE(faults.SetSpec("tuner_throw:2x").ok());
  EXPECT_TRUE(faults.ShouldFire("tuner_throw"));
  EXPECT_TRUE(faults.ShouldFire("tuner_throw"));
  EXPECT_FALSE(faults.ShouldFire("tuner_throw"));
  EXPECT_FALSE(faults.ShouldFire("tuner_throw"));

  // Malformed specs are rejected and keep the previous set armed.
  EXPECT_TRUE(faults.SetSpec("tuner_throw:1").ok());
  EXPECT_FALSE(faults.SetSpec("tuner_throw:banana").ok());
  EXPECT_TRUE(faults.ShouldFire("tuner_throw"));
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

TEST_F(FaultTolerance, CancelTokenAbortsRunWithKCancelled) {
  RunBudget budget;
  budget.token = std::make_shared<CancelToken>();
  budget.token->Cancel();  // Cancelled before the run even starts.
  SmartML framework(FastOptions());
  auto result = framework.Run(SmallDataset(), framework.options(), budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultTolerance, CancelMidParallelTuneAbortsPromptly) {
  // Candidates tune concurrently on a 4-thread run; a cancel fired from
  // another thread mid-tune must reach every parallel strand and abort the
  // run with kCancelled well inside the latency bound.
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("slow_train:20ms").ok());

  SmartMlOptions options = FastOptions();
  options.num_threads = 4;
  options.max_evaluations = 50;
  options.cold_start_algorithms = {"knn", "rpart", "naive_bayes",
                                   "random_forest"};
  RunBudget budget;
  budget.token = std::make_shared<CancelToken>();

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    budget.token->Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  SmartML framework(options);
  auto result = framework.Run(SmallDataset(), options, budget);
  canceller.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_LT(seconds, 5.0) << "parallel run ignored the cancel for too long";
}

TEST_F(FaultTolerance, CancelRunningJobReachesTerminalStateQuickly) {
  // slow_train makes every fold evaluation sleep, so the job reliably stays
  // running long enough to observe the cancelling -> cancelled transition.
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("slow_train:100ms").ok());

  MetricsRegistry metrics;
  SmartML framework(FastOptions());
  JobManagerOptions job_options;
  job_options.num_workers = 1;
  job_options.metrics = &metrics;
  JobManager jobs(&framework, job_options);

  auto id = jobs.Submit(SmallDataset(), framework.options());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Wait for the worker to pick the job up.
  for (int i = 0; i < 200 && jobs.NumRunning() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(jobs.NumRunning(), 1u);

  const auto cancel_time = std::chrono::steady_clock::now();
  auto snapshot = jobs.Cancel(*id);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_TRUE(snapshot->state == JobState::kCancelling ||
              snapshot->state == JobState::kCancelled);

  // Repeat cancels are idempotent while the worker winds down.
  EXPECT_TRUE(jobs.Cancel(*id).ok());

  auto final_snapshot = jobs.Wait(*id, /*timeout_seconds=*/10.0);
  ASSERT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
  EXPECT_EQ(final_snapshot->state, JobState::kCancelled);
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cancel_time)
          .count();
  EXPECT_LT(latency, 2.0) << "cancellation latency exceeded the 2s bound";

  EXPECT_EQ(metrics
                .GetCounter("smartml_runs_cancelled_total",
                            "Runs cancelled via DELETE /v1/runs/{id} "
                            "(queued or running).")
                ->Value(),
            1u);
  EXPECT_EQ(metrics
                .GetGauge("smartml_jobs_cancelling",
                          "Running experiments with a pending cancel "
                          "request.")
                ->Value(),
            0);
}

TEST_F(FaultTolerance, DeadlineExpiryReturnsBestSoFarNotDegraded) {
  SmartMlOptions options = FastOptions();
  // Slow folds + a deadline that expires after the first candidate: the run
  // must still return a usable best-so-far result.
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("slow_train:20ms").ok());
  options.time_budget_seconds = 30.0;
  options.max_evaluations = 0;
  options.run_deadline_seconds = 0.7;
  SmartML framework(options);
  auto result = framework.Run(SmallDataset());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->best_algorithm.empty());
  EXPECT_NE(result->best_model, nullptr);
  // Budget exhaustion is within the contract — not a degraded run.
  EXPECT_FALSE(result->degraded);
  EXPECT_TRUE(result->failed_candidates.empty());
}

TEST_F(FaultTolerance, ZeroDeadlineFailsWithDeadlineExceeded) {
  RunBudget budget;
  budget.deadline = Deadline::After(0.0);  // Already expired.
  SmartML framework(FastOptions());
  auto result = framework.Run(SmallDataset(), framework.options(), budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Per-candidate failure isolation
// ---------------------------------------------------------------------------

TEST_F(FaultTolerance, ThrowingCandidateDegradesRunToSurvivors) {
  // tuner_throw:1x fires on exactly the first candidate (knn): it throws,
  // the run completes on the surviving candidate (rpart) and reports the
  // degradation instead of failing.
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("tuner_throw:1x").ok());
  Counter* failed = GlobalMetrics().GetCounter(
      "smartml_candidates_failed_total",
      "Nominated algorithms whose tuning failed; the run degrades to the "
      "surviving candidates.");
  const uint64_t failed_before = failed->Value();

  SmartML framework(FastOptions());
  auto result = framework.Run(SmallDataset());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->failed_candidates.size(), 1u);
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->best_algorithm, "rpart");
  EXPECT_EQ(result->per_algorithm.size(), 1u);
  EXPECT_EQ(result->failed_candidates[0].algorithm, "knn");
  EXPECT_NE(result->failed_candidates[0].error.find("tuner_throw"),
            std::string::npos);
  EXPECT_EQ(failed->Value(), failed_before + 1);

  // The failure surfaces in the trace.
  bool found_failure_span = false;
  for (const auto& span : result->trace) {
    if (span.name.find("/failed") != std::string::npos) {
      found_failure_span = true;
    }
  }
  EXPECT_TRUE(found_failure_span);
}

TEST_F(FaultTolerance, AllCandidatesFailingFailsTheRun) {
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("tuner_throw").ok());
  SmartML framework(FastOptions());
  auto result = framework.Run(SmallDataset());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("all 2 candidate algorithms"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(FaultTolerance, KbLookupFailureDegradesToColdStart) {
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("kb_lookup_throw").ok());
  SmartML framework(FastOptions());
  // Seed the KB so the lookup path (not the empty-KB path) is exercised.
  KbRecord record;
  record.dataset_name = "seed";
  KbAlgorithmResult seed_result;
  seed_result.algorithm = "knn";
  seed_result.accuracy = 0.9;
  record.results.push_back(seed_result);
  framework.mutable_kb().AddRecord(record);

  auto result = framework.Run(SmallDataset());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_FALSE(result->used_meta_learning);
  EXPECT_FALSE(result->best_algorithm.empty());
}

// ---------------------------------------------------------------------------
// Crash-safe KB persistence
// ---------------------------------------------------------------------------

KnowledgeBase MakeKb(int num_records) {
  KnowledgeBase kb;
  for (int i = 0; i < num_records; ++i) {
    KbRecord record;
    record.dataset_name = "ds_" + std::to_string(i);
    record.meta_features[0] = 100.0 + i;
    KbAlgorithmResult result;
    result.algorithm = "svm";
    result.accuracy = 0.5 + 0.01 * i;
    result.best_config.SetDouble("C", 1.0 + i);
    record.results.push_back(result);
    kb.AddRecord(record);
  }
  return kb;
}

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid());
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteAll(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST_F(FaultTolerance, SaveLoadRoundTripWithChecksum) {
  const std::string path = TempPath("kb_roundtrip");
  KnowledgeBase kb = MakeKb(3);
  ASSERT_TRUE(kb.SaveToFile(path).ok());
  // The default on-disk format is the versioned binary snapshot (magic +
  // per-section crc32); the checksum is what LoadFromFile verifies below.
  const std::string bytes = ReadAll(path);
  EXPECT_EQ(bytes.rfind("SMKBSNAP", 0), 0u);

  auto loaded = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRecords(), 3u);
  std::remove(path.c_str());
}

TEST_F(FaultTolerance, TextSaveStillRoundTripsWithCrcLine) {
  const std::string path = TempPath("kb_roundtrip_text");
  KnowledgeBase kb = MakeKb(3);
  ASSERT_TRUE(kb.SaveToFile(path, KbFileFormat::kText).ok());
  const std::string text = ReadAll(path);
  EXPECT_NE(text.find("\ncrc32 "), std::string::npos);

  auto loaded = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRecords(), 3u);
  std::remove(path.c_str());
}

TEST_F(FaultTolerance, SecondSaveKeepsBakOfLastGood) {
  const std::string path = TempPath("kb_bak");
  ASSERT_TRUE(MakeKb(2).SaveToFile(path).ok());
  ASSERT_TRUE(MakeKb(5).SaveToFile(path).ok());

  auto main_kb = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(main_kb.ok());
  EXPECT_EQ(main_kb->NumRecords(), 5u);
  auto bak_kb = KnowledgeBase::Deserialize(ReadAll(path + ".bak"));
  ASSERT_TRUE(bak_kb.ok()) << bak_kb.status().ToString();
  EXPECT_EQ(bak_kb->NumRecords(), 2u);
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

TEST_F(FaultTolerance, SimulatedCrashDuringSaveNeverCorruptsTheKb) {
  const std::string path = TempPath("kb_crash");
  ASSERT_TRUE(MakeKb(3).SaveToFile(path).ok());

  // Arm the crash: the save must fail *without* touching `path`.
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("kb_save_crash").ok());
  Status crashed = MakeKb(9).SaveToFile(path);
  EXPECT_FALSE(crashed.ok());
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());

  auto loaded = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRecords(), 3u);  // The pre-crash contents, intact.
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".bak").c_str());
}

TEST_F(FaultTolerance, FailedFinalRenameRestoresMainFromBak) {
  // The second rename of the save (tmp -> path) happens after the old file
  // already moved to .bak. If it fails, the error path must put the
  // last-good file back so `path` never goes missing because of a failed
  // save.
  const std::string path = TempPath("kb_renamefail");
  ASSERT_TRUE(MakeKb(3).SaveToFile(path).ok());

  ASSERT_TRUE(FaultInjection::Instance().SetSpec("kb_rename_fail").ok());
  Status failed = MakeKb(7).SaveToFile(path);
  EXPECT_FALSE(failed.ok());
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());

  // The main path still loads and still holds the pre-failure contents.
  auto loaded = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRecords(), 3u);

  // And a later save (fault disarmed) works normally.
  ASSERT_TRUE(MakeKb(5).SaveToFile(path).ok());
  auto after = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->NumRecords(), 5u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".bak").c_str());
}

TEST_F(FaultTolerance, ChecksumCatchesBitFlips) {
  const std::string path = TempPath("kb_bitflip");
  ASSERT_TRUE(MakeKb(3).SaveToFile(path).ok());
  std::string text = ReadAll(path);
  text[text.size() / 3] ^= 0x20;  // Silent single-bit corruption.
  WriteAll(path, text);

  auto strict = KnowledgeBase::Deserialize(ReadAll(path));
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FaultTolerance, TornTailIsSalvagedWithWarning) {
  const std::string path = TempPath("kb_torn");
  ASSERT_TRUE(MakeKb(4).SaveToFile(path).ok());
  std::string text = ReadAll(path);
  // Tear the file mid-way (simulates a kill -9 between write and fsync).
  WriteAll(path, text.substr(0, text.size() * 2 / 3));

  const uint64_t recoveries_before =
      GlobalMetrics()
          .GetCounter("smartml_kb_recoveries_total",
                      "Knowledge-base loads that required salvage or .bak "
                      "fallback.")
          ->Value();
  auto salvaged = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(salvaged.ok()) << salvaged.status().ToString();
  EXPECT_GE(salvaged->NumRecords(), 1u);
  EXPECT_LT(salvaged->NumRecords(), 4u);
  EXPECT_EQ(GlobalMetrics()
                .GetCounter("smartml_kb_recoveries_total",
                            "Knowledge-base loads that required salvage or "
                            ".bak fallback.")
                ->Value(),
            recoveries_before + 1);
  std::remove(path.c_str());
}

TEST_F(FaultTolerance, UnsalvageableMainFallsBackToBak) {
  const std::string path = TempPath("kb_fallback");
  ASSERT_TRUE(MakeKb(2).SaveToFile(path).ok());
  ASSERT_TRUE(MakeKb(6).SaveToFile(path).ok());  // 2-record KB now in .bak.
  WriteAll(path, "complete garbage\nnothing survives here\n");

  auto loaded = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRecords(), 2u);
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

TEST_F(FaultTolerance, InjectedLoadCorruptionIsCaughtAndRecovered) {
  const std::string path = TempPath("kb_loadfault");
  ASSERT_TRUE(MakeKb(3).SaveToFile(path).ok());
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("kb_load_corrupt").ok());
  auto loaded = KnowledgeBase::LoadFromFile(path);
  // The corruption is injected into the read body; the checksum detects it
  // and salvage recovers what it can (possibly zero records -> .bak path;
  // with no .bak the load may fail, which is also acceptable — what is NOT
  // acceptable is an undetected wrong KB).
  if (loaded.ok()) {
    EXPECT_LE(loaded->NumRecords(), 3u);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end: REST DELETE on a running job
// ---------------------------------------------------------------------------

TEST_F(FaultTolerance, CancelledRunIncrementsPipelineCancelCounter) {
  Counter* cancelled = GlobalMetrics().GetCounter(
      "smartml_runs_total", "Completed SmartML pipeline runs by outcome.",
      {{"outcome", "cancelled"}});
  const uint64_t before = cancelled->Value();
  RunBudget budget;
  budget.token = std::make_shared<CancelToken>();
  budget.token->Cancel();
  SmartML framework(FastOptions());
  auto result = framework.Run(SmallDataset(), framework.options(), budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(cancelled->Value(), before + 1);
}

}  // namespace
}  // namespace smartml
