// Tests for the genetic-algorithm tuner (the TPOT-style optimizer).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tuning/genetic.h"

namespace smartml {
namespace {

class BowlObjective : public TuningObjective {
 public:
  explicit BowlObjective(size_t folds = 1) : folds_(folds) {}
  size_t NumFolds() const override { return folds_; }
  StatusOr<double> EvaluateFold(const ParamConfig& config,
                                size_t fold) override {
    ++evaluations_;
    const double dx = config.GetDouble("x", 0.0) - 0.3;
    const double dy = config.GetDouble("y", 0.0) - 0.7;
    return dx * dx + dy * dy + 0.001 * static_cast<double>(fold);
  }
  size_t evaluations() const { return evaluations_; }

 private:
  size_t folds_;
  size_t evaluations_ = 0;
};

ParamSpace BowlSpace() {
  ParamSpace space;
  space.AddDouble("x", 0.0, 1.0, 0.0);
  space.AddDouble("y", 0.0, 1.0, 0.0);
  return space;
}

TEST(GeneticTest, FindsNearOptimum) {
  BowlObjective objective;
  GeneticOptions options;
  options.max_evaluations = 200;
  options.seed = 3;
  auto result = GeneticSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->best_cost, 0.03);
}

TEST(GeneticTest, RespectsBudget) {
  BowlObjective objective(2);
  GeneticOptions options;
  options.max_evaluations = 25;
  auto result = GeneticSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(objective.evaluations(), 25u);
  EXPECT_EQ(result->num_evaluations, objective.evaluations());
}

TEST(GeneticTest, SeedIndividualWins) {
  BowlObjective objective;
  GeneticOptions options;
  options.max_evaluations = 12;
  ParamConfig seed_config;
  seed_config.SetDouble("x", 0.3);
  seed_config.SetDouble("y", 0.7);
  options.initial_configs = {seed_config};
  auto result = GeneticSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->best_cost, 1e-9);
}

TEST(GeneticTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    BowlObjective objective;
    GeneticOptions options;
    options.max_evaluations = 60;
    options.seed = seed;
    auto result = GeneticSearch(BowlSpace(), &objective, options);
    EXPECT_TRUE(result.ok());
    return result->best_cost;
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
}

TEST(GeneticTest, ImprovesAcrossGenerations) {
  BowlObjective objective;
  GeneticOptions options;
  options.max_evaluations = 120;
  options.population_size = 10;
  options.seed = 9;
  auto result = GeneticSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->trajectory.size(), 20u);
  // The incumbent after the last generation beats the first generation's.
  EXPECT_LT(result->trajectory.back(), result->trajectory[9] - 1e-6);
}

TEST(GeneticTest, HandlesCategoricalSpaces) {
  ParamSpace space;
  space.AddCategorical("mode", {"bad", "good"}, "bad");
  space.AddDouble("x", 0.0, 1.0, 0.0);
  class ModeObjective : public TuningObjective {
   public:
    size_t NumFolds() const override { return 1; }
    StatusOr<double> EvaluateFold(const ParamConfig& config,
                                  size_t) override {
      const double base =
          config.GetChoice("mode", "bad") == "good" ? 0.0 : 0.5;
      const double dx = config.GetDouble("x", 0.0) - 0.5;
      return base + dx * dx;
    }
  } objective;
  GeneticOptions options;
  options.max_evaluations = 120;
  options.seed = 11;
  auto result = GeneticSearch(space, &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_config.GetChoice("mode", ""), "good");
  EXPECT_LT(result->best_cost, 0.05);
}

TEST(GeneticTest, RejectsNullObjective) {
  GeneticOptions options;
  EXPECT_FALSE(GeneticSearch(BowlSpace(), nullptr, options).ok());
}

TEST(GeneticTest, ZeroDeadlineStopsImmediately) {
  BowlObjective objective;
  GeneticOptions options;
  options.max_evaluations = 100000;
  options.deadline = Deadline::After(0.0);
  auto result = GeneticSearch(BowlSpace(), &objective, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(objective.evaluations(), 1u);
}

}  // namespace
}  // namespace smartml
