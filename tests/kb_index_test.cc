// k-d tree lookup-index tests: the tree path must return *byte-identical*
// neighbour lists (order, ties, distances) to the linear scan, which stays
// available as the correctness oracle via SetLookupStrategy. Randomized KBs
// cover clustered data (where the tree prunes hard), exact duplicate points
// (tie-break stress), and the bounded-rebuild append tail; a threaded case
// exercises lookups racing appends under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/kb/kd_tree.h"
#include "src/kb/knowledge_base.h"

namespace smartml {
namespace {

KbRecord MakeRecord(const std::string& name, const MetaFeatureVector& mf) {
  KbRecord record;
  record.dataset_name = name;
  record.meta_features = mf;
  KbAlgorithmResult result;
  result.algorithm = "random_forest";
  result.accuracy = 0.5;
  record.results.push_back(result);
  return record;
}

/// Random meta-features with low intrinsic dimension: a few latent factors
/// drive all 25 dimensions (like real meta-features, where e.g. instance
/// and feature counts correlate with many derived statistics). `dup_every`
/// > 0 repeats an earlier point exactly to force distance ties.
std::vector<MetaFeatureVector> RandomPoints(size_t n, uint32_t seed,
                                            size_t dup_every = 0) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  std::uniform_int_distribution<int> cluster(0, 7);
  std::vector<MetaFeatureVector> out;
  out.reserve(n);
  // Per-cluster centers and a shared factor-loading matrix.
  constexpr size_t kFactors = 3;
  double loadings[kFactors][kNumMetaFeatures];
  for (auto& row : loadings) {
    for (double& v : row) v = normal(rng);
  }
  double centers[8][kFactors];
  for (auto& c : centers) {
    for (double& v : c) v = 4.0 * normal(rng);
  }
  for (size_t i = 0; i < n; ++i) {
    if (dup_every > 0 && i % dup_every == 0 && i > 0) {
      out.push_back(out[rng() % i]);
      continue;
    }
    const int c = cluster(rng);
    double factors[kFactors];
    for (size_t f = 0; f < kFactors; ++f) {
      factors[f] = centers[c][f] + 0.3 * normal(rng);
    }
    MetaFeatureVector mf{};
    for (size_t d = 0; d < kNumMetaFeatures; ++d) {
      for (size_t f = 0; f < kFactors; ++f) {
        mf[d] += factors[f] * loadings[f][d];
      }
      mf[d] += 0.01 * normal(rng);
    }
    out.push_back(mf);
  }
  return out;
}

/// Asserts the two neighbour lists are byte-identical: same records, same
/// order, bit-equal distances.
void ExpectSameNeighbors(const std::vector<KbNeighbor>& tree,
                         const std::vector<KbNeighbor>& linear) {
  ASSERT_EQ(tree.size(), linear.size());
  for (size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(tree[i].record.dataset_name, linear[i].record.dataset_name)
        << "rank " << i;
    // Bit equality, not near-equality: both paths must compute the same
    // MetaFeatureDistance over the same cached normalized vectors.
    EXPECT_EQ(tree[i].distance, linear[i].distance) << "rank " << i;
  }
}

TEST(KdTreeOracle, MatchesLinearScanOnRandomizedKbs) {
  for (const uint32_t seed : {1u, 7u, 42u}) {
    for (const size_t n : {size_t{3}, size_t{40}, size_t{500}}) {
      KnowledgeBase kb;
      const auto points = RandomPoints(n, seed);
      for (size_t i = 0; i < points.size(); ++i) {
        kb.AddRecord(MakeRecord("d" + std::to_string(i), points[i]));
      }
      const auto queries = RandomPoints(20, seed + 1000);
      for (const size_t k : {size_t{1}, size_t{3}, size_t{10}, n + 5}) {
        for (const auto& q : queries) {
          kb.SetLookupStrategy(KbLookupStrategy::kKdTree);
          const auto tree = kb.NearestRecords(q, k);
          kb.SetLookupStrategy(KbLookupStrategy::kLinearScan);
          const auto linear = kb.NearestRecords(q, k);
          ExpectSameNeighbors(tree, linear);
        }
      }
    }
  }
}

TEST(KdTreeOracle, MatchesLinearScanWithDuplicatePointsAndTies) {
  // Every 3rd point is an exact duplicate of an earlier one: the k-th best
  // boundary lands on tied distances, so any tie-break divergence between
  // the paths shows up as a different neighbour list.
  KnowledgeBase kb;
  const auto points = RandomPoints(300, 11, /*dup_every=*/3);
  for (size_t i = 0; i < points.size(); ++i) {
    kb.AddRecord(MakeRecord("d" + std::to_string(i), points[i]));
  }
  for (size_t qi = 0; qi < points.size(); qi += 17) {
    // Query *at* a duplicated stored point: distance 0 ties included.
    kb.SetLookupStrategy(KbLookupStrategy::kKdTree);
    const auto tree = kb.NearestRecords(points[qi], 7);
    kb.SetLookupStrategy(KbLookupStrategy::kLinearScan);
    const auto linear = kb.NearestRecords(points[qi], 7);
    ExpectSameNeighbors(tree, linear);
  }
}

TEST(KdTreeOracle, MatchesLinearScanAcrossAppendTail) {
  // Build big enough that kAuto activates the tree, then keep appending:
  // the appended records live in the linear tail until the bounded rebuild
  // triggers, and every query must see them exactly like the oracle does.
  KnowledgeBase kb;
  const auto points = RandomPoints(900, 23);
  for (size_t i = 0; i < 600; ++i) {
    kb.AddRecord(MakeRecord("d" + std::to_string(i), points[i]));
  }
  const auto query = RandomPoints(1, 99)[0];
  for (size_t i = 600; i < points.size(); ++i) {
    kb.AddRecord(MakeRecord("d" + std::to_string(i), points[i]));
    if (i % 37 != 0) continue;
    kb.SetLookupStrategy(KbLookupStrategy::kKdTree);
    const auto tree = kb.NearestRecords(query, 5);
    kb.SetLookupStrategy(KbLookupStrategy::kLinearScan);
    const auto linear = kb.NearestRecords(query, 5);
    ExpectSameNeighbors(tree, linear);
  }
  // Force the auto path too (no strategy flipping): it must agree with the
  // last oracle answer.
  kb.SetLookupStrategy(KbLookupStrategy::kAuto);
  const auto auto_result = kb.NearestRecords(query, 5);
  kb.SetLookupStrategy(KbLookupStrategy::kLinearScan);
  ExpectSameNeighbors(auto_result, kb.NearestRecords(query, 5));
}

TEST(KdTreeOracle, IndexStatsReflectTreeState) {
  KnowledgeBase kb;
  const auto points = RandomPoints(10, 5);
  for (size_t i = 0; i < points.size(); ++i) {
    kb.AddRecord(MakeRecord("d" + std::to_string(i), points[i]));
  }
  // Small KB under kAuto: linear, no tree.
  KbIndexStats stats = kb.IndexStats();
  EXPECT_FALSE(stats.tree_active);
  EXPECT_EQ(stats.indexed_records, 0u);
  EXPECT_EQ(stats.records, 10u);

  kb.SetLookupStrategy(KbLookupStrategy::kKdTree);
  stats = kb.IndexStats();
  EXPECT_TRUE(stats.tree_active);
  EXPECT_EQ(stats.indexed_records, 10u);
  EXPECT_EQ(stats.tail_records, 0u);
  EXPECT_GT(stats.tree_depth, 0u);

  // One append lands in the tail (bounded rebuild defers the full rebuild).
  kb.AddRecord(MakeRecord("tail", RandomPoints(1, 77)[0]));
  stats = kb.IndexStats();
  EXPECT_EQ(stats.records, 11u);
  EXPECT_EQ(stats.indexed_records + stats.tail_records, 11u);
}

TEST(KdTreeOracle, LookupsRaceAppendsUnderTsan) {
  // Readers hammer NearestRecords while a writer appends; TSan checks the
  // shared_mutex discipline around the tree/tail. Each result must be
  // internally consistent: sorted by (distance, name-insertion) and of the
  // right size for however many records were visible.
  KnowledgeBase kb;
  const auto points = RandomPoints(800, 31);
  for (size_t i = 0; i < 400; ++i) {
    kb.AddRecord(MakeRecord("d" + std::to_string(i), points[i]));
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (size_t i = 400; i < points.size(); ++i) {
      kb.AddRecord(MakeRecord("d" + std::to_string(i), points[i]));
    }
    stop = true;
  });
  const auto query = RandomPoints(1, 13)[0];
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      // Bounded iterations, not while(!stop): spinning readers on a
      // reader-preferring rwlock can starve the writer indefinitely on a
      // single core (and TSan magnifies that into a test timeout).
      for (int i = 0; i < 300 && !stop.load(); ++i) {
        const auto result = kb.NearestRecords(query, 5);
        ASSERT_LE(result.size(), 5u);
        for (size_t i = 1; i < result.size(); ++i) {
          ASSERT_LE(result[i - 1].distance, result[i].distance);
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  // Post-join: all appends visible, tree and oracle agree again.
  kb.SetLookupStrategy(KbLookupStrategy::kKdTree);
  const auto tree = kb.NearestRecords(query, 5);
  kb.SetLookupStrategy(KbLookupStrategy::kLinearScan);
  ExpectSameNeighbors(tree, kb.NearestRecords(query, 5));
}

TEST(KdTreeCompaction, MergesNearDuplicatesEarliestSurvives) {
  KnowledgeBase kb;
  const auto points = RandomPoints(40, 3);
  for (size_t i = 0; i < points.size(); ++i) {
    kb.AddRecord(MakeRecord("d" + std::to_string(i), points[i]));
  }
  // Same meta-features as d5 under a different name, with a better result
  // for another algorithm: after compaction d5 survives carrying both.
  KbRecord twin = MakeRecord("twin_of_5", points[5]);
  twin.results[0].algorithm = "svm";
  twin.results[0].accuracy = 0.9;
  kb.AddRecord(twin);

  KbCompactionOptions options;
  options.dedup_epsilon = 1e-9;
  const KbCompactionStats stats = kb.Compact(options);
  EXPECT_EQ(stats.before, 41u);
  EXPECT_EQ(stats.merged, 1u);
  EXPECT_EQ(stats.after, 40u);
  EXPECT_FALSE(kb.Find("twin_of_5").has_value());
  const auto survivor = kb.Find("d5");
  ASSERT_TRUE(survivor.has_value());
  ASSERT_EQ(survivor->results.size(), 2u);
  bool has_svm = false;
  for (const auto& result : survivor->results) {
    has_svm = has_svm || (result.algorithm == "svm" && result.accuracy == 0.9);
  }
  EXPECT_TRUE(has_svm);
}

TEST(KdTreeCompaction, QualityWeightedEvictionDropsWorstFirst) {
  KnowledgeBase kb;
  const auto points = RandomPoints(20, 9);
  for (size_t i = 0; i < points.size(); ++i) {
    KbRecord record = MakeRecord("d" + std::to_string(i), points[i]);
    record.results[0].accuracy = 0.3 + 0.03 * static_cast<double>(i);
    kb.AddRecord(record);
  }
  KbCompactionOptions options;
  options.dedup_epsilon = 0.0;  // Eviction only.
  options.max_records = 15;
  const KbCompactionStats stats = kb.Compact(options);
  EXPECT_EQ(stats.evicted, 5u);
  EXPECT_EQ(kb.NumRecords(), 15u);
  // The five lowest-accuracy records (d0..d4) are gone; the best survive.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(kb.Find("d" + std::to_string(i)).has_value()) << i;
  }
  for (int i = 5; i < 20; ++i) {
    EXPECT_TRUE(kb.Find("d" + std::to_string(i)).has_value()) << i;
  }
}

}  // namespace
}  // namespace smartml
