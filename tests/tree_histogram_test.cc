// Exact-vs-histogram oracle tests for the decision tree, plus unit tests
// for the shared SIMD kernels.
//
// The contract under test (see DESIGN.md): with lossless binning (every
// distinct value its own bin) and integral sample weights, histogram growth
// partitions the training rows exactly as exact growth does, so the two
// trees agree on every training-row prediction, leaf count, and depth.
// Lossy (quantile) binning and fractional weights only promise closeness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/data/binned_columns.h"
#include "src/data/dataset.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"
#include "src/ml/forest.h"

namespace smartml {
namespace {

std::vector<int> Predictions(const DecisionTree& tree, const Matrix& x) {
  std::vector<int> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = tree.PredictRow(x.RowPtr(r));
  }
  return out;
}

double Accuracy(const std::vector<int>& pred, const std::vector<int>& y) {
  size_t hits = 0;
  for (size_t r = 0; r < pred.size(); ++r) hits += pred[r] == y[r];
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

// Snaps numeric columns to a 0.25 grid so each has far fewer than 255
// distinct values and the binning is lossless.
void SnapToGrid(Dataset* d) {
  for (size_t f = 0; f < d->NumFeatures(); ++f) {
    if (d->feature(f).is_categorical()) continue;
    for (double& v : d->mutable_feature(f).values) {
      if (!IsMissing(v)) v = std::round(v * 4.0) / 4.0;
    }
  }
}

Dataset GridDataset(uint64_t seed, double missing_fraction,
                    size_t num_categorical) {
  SyntheticSpec spec;
  spec.kind = SyntheticKind::kGaussianClusters;
  spec.num_instances = 300;
  spec.num_informative = 5;
  spec.num_noise = 1;
  spec.num_categorical = num_categorical;
  spec.categorical_cardinality = 5;
  spec.num_classes = 3;
  spec.clusters_per_class = 2;
  spec.class_sep = 1.5;
  spec.label_noise = 0.05;
  spec.missing_fraction = missing_fraction;
  spec.seed = seed;
  Dataset d = GenerateSynthetic(spec);
  SnapToGrid(&d);
  return d;
}

// Fits the same problem in both modes and returns (exact, histogram).
std::pair<DecisionTree, DecisionTree> FitPair(
    const Dataset& train, const std::vector<double>& weights,
    TreeOptions options) {
  const Matrix x = train.ToRawMatrix();
  const TreeSchema schema = TreeSchema::FromDataset(train);
  const int k = static_cast<int>(train.NumClasses());

  DecisionTree exact;
  options.split_mode = TreeSplitMode::kExact;
  EXPECT_TRUE(
      exact.Fit(x, schema, train.labels(), k, weights, options).ok());

  DecisionTree hist;
  options.split_mode = TreeSplitMode::kHistogram;
  EXPECT_TRUE(hist.Fit(x, schema, train.labels(), k, weights, options,
                       train.Binned())
                  .ok());
  return {std::move(exact), std::move(hist)};
}

// Asserts the identity contract on the rows that actually trained:
// zero-weight rows are dropped before growth, making them held-out rows
// for which the two modes' thresholds (node-local midpoints vs global bin
// midpoints) may legitimately route differently.
void ExpectIdenticalOnTrain(const Dataset& train, const DecisionTree& exact,
                            const DecisionTree& hist,
                            const std::vector<double>& weights = {}) {
  EXPECT_EQ(exact.NumLeaves(), hist.NumLeaves());
  EXPECT_EQ(exact.Depth(), hist.Depth());
  const Matrix x = train.ToRawMatrix();
  const std::vector<int> pe = Predictions(exact, x);
  const std::vector<int> ph = Predictions(hist, x);
  for (size_t r = 0; r < pe.size(); ++r) {
    if (!weights.empty() && weights[r] <= 0.0) continue;
    ASSERT_EQ(pe[r], ph[r]) << "row " << r;
  }
}

// Randomized oracle sweep: every criterion, with and without multiway
// categorical splits, missing values, categorical columns, and pruning.
// Lossless bins + unit weights => the histogram tree must match exact
// growth on every training prediction.
TEST(TreeHistogramTest, LosslessGridOracleAcrossConfigs) {
  const TreeCriterion criteria[] = {TreeCriterion::kGini,
                                    TreeCriterion::kEntropy,
                                    TreeCriterion::kGainRatio};
  for (uint64_t seed : {42u, 43u}) {
    for (TreeCriterion crit : criteria) {
      for (bool multiway : {false, true}) {
        for (double missing : {0.0, 0.1}) {
          for (size_t cats : {size_t{0}, size_t{2}}) {
            SCOPED_TRACE(testing::Message()
                         << "seed=" << seed << " crit="
                         << static_cast<int>(crit) << " multiway=" << multiway
                         << " missing=" << missing << " cats=" << cats);
            const Dataset train = GridDataset(seed, missing, cats);
            // Sanity: the grid snap must have made every column lossless,
            // otherwise this test is not exercising the identity contract.
            const auto binned = train.Binned();
            for (size_t f = 0; f < binned->num_features(); ++f) {
              ASSERT_TRUE(binned->column(f).lossless) << "feature " << f;
            }
            TreeOptions options;
            options.criterion = crit;
            options.multiway_categorical = multiway;
            options.max_depth = 12;
            options.min_split = 4;
            options.min_leaf = 2;
            if (crit == TreeCriterion::kGainRatio) {
              options.confidence_factor = 0.25;  // Exercise C4.5 pruning.
            } else {
              options.min_impurity_decrease = 0.001;  // Exercise cp gate.
            }
            const auto [exact, hist] = FitPair(train, {}, options);
            ExpectIdenticalOnTrain(train, exact, hist);
          }
        }
      }
    }
  }
}

// Bootstrap-style integer weights (including zeros) keep the identity:
// integer sums are exact in doubles, so gains are bit-identical.
TEST(TreeHistogramTest, IntegerBootstrapWeightsMatchExact) {
  const Dataset train = GridDataset(7, 0.0, 2);
  Rng rng(99);
  std::vector<double> weights(train.NumRows(), 0.0);
  for (size_t r = 0; r < weights.size(); ++r) {
    weights[rng.UniformInt(weights.size())] += 1.0;  // Bootstrap counts.
  }
  TreeOptions options;
  options.max_depth = 14;
  options.min_split = 4;
  options.min_leaf = 2;
  const auto [exact, hist] = FitPair(train, weights, options);
  ExpectIdenticalOnTrain(train, exact, hist, weights);
}

// Missing values + non-uniform weights break the per-row identity by
// design: the training partition routes missing rows to the child with
// more ROWS, while predict time follows majority_child (heaviest by
// WEIGHT). When those disagree a missing row strays off its training path
// at predict time, and for a strayed (effectively held-out) row the two
// modes' thresholds — node-local midpoints vs global bin midpoints — may
// legitimately route it differently. Structure stays identical (gains are
// still bit-equal integer sums); predictions only promise closeness.
TEST(TreeHistogramTest, IntegerWeightsWithMissingKeepStructure) {
  const Dataset train = GridDataset(7, 0.05, 2);
  Rng rng(99);
  std::vector<double> weights(train.NumRows(), 0.0);
  for (size_t r = 0; r < weights.size(); ++r) {
    weights[rng.UniformInt(weights.size())] += 1.0;
  }
  TreeOptions options;
  options.max_depth = 14;
  options.min_split = 4;
  options.min_leaf = 2;
  const auto [exact, hist] = FitPair(train, weights, options);
  EXPECT_EQ(exact.NumLeaves(), hist.NumLeaves());
  EXPECT_EQ(exact.Depth(), hist.Depth());
  const Matrix x = train.ToRawMatrix();
  const double acc_exact = Accuracy(Predictions(exact, x), train.labels());
  const double acc_hist = Accuracy(Predictions(hist, x), train.labels());
  EXPECT_NEAR(acc_exact, acc_hist, 0.05);
}

// Feature subsampling draws from the tree RNG in the same per-node order in
// both modes, so identical structure implies identical subsets and the
// identity survives mtry < d.
TEST(TreeHistogramTest, MtrySubsetMatchesExact) {
  const Dataset train = GridDataset(11, 0.0, 1);
  TreeOptions options;
  options.max_depth = 14;
  options.min_split = 4;
  options.min_leaf = 2;
  options.mtry = 2;
  options.seed = 5;
  const auto [exact, hist] = FitPair(train, {}, options);
  ExpectIdenticalOnTrain(train, exact, hist);
}

// Fractional weights change floating-point summation order between the two
// modes, so only closeness is promised.
TEST(TreeHistogramTest, FractionalWeightsStayClose) {
  const Dataset train = GridDataset(13, 0.0, 0);
  Rng rng(3);
  std::vector<double> weights(train.NumRows());
  for (double& w : weights) w = rng.Uniform(0.1, 2.0);
  TreeOptions options;
  options.max_depth = 12;
  options.min_split = 4;
  options.min_leaf = 2;
  const auto [exact, hist] = FitPair(train, weights, options);
  const Matrix x = train.ToRawMatrix();
  const double acc_exact = Accuracy(Predictions(exact, x), train.labels());
  const double acc_hist = Accuracy(Predictions(hist, x), train.labels());
  EXPECT_NEAR(acc_exact, acc_hist, 0.05);
}

// Continuous columns with thousands of distinct values force real quantile
// binning (lossless = false); the histogram tree must stay within a small
// train-accuracy band of the exact tree.
TEST(TreeHistogramTest, QuantileBinnedColumnsStayClose) {
  SyntheticSpec spec;
  spec.num_instances = 3000;
  spec.num_informative = 6;
  spec.num_classes = 4;
  spec.clusters_per_class = 2;
  spec.class_sep = 1.5;
  spec.label_noise = 0.05;
  spec.seed = 17;
  const Dataset train = GenerateSynthetic(spec);
  const auto binned = train.Binned();
  bool any_lossy = false;
  for (size_t f = 0; f < binned->num_features(); ++f) {
    any_lossy |= !binned->column(f).lossless;
    EXPECT_LE(binned->column(f).num_bins, BinnedColumns::kMaxBins);
  }
  ASSERT_TRUE(any_lossy) << "test is not exercising quantile binning";

  TreeOptions options;
  options.max_depth = 14;
  options.min_split = 40;
  options.min_leaf = 20;
  const auto [exact, hist] = FitPair(train, {}, options);
  const Matrix x = train.ToRawMatrix();
  const double acc_exact = Accuracy(Predictions(exact, x), train.labels());
  const double acc_hist = Accuracy(Predictions(hist, x), train.labels());
  EXPECT_GT(acc_exact, 0.6);
  EXPECT_NEAR(acc_exact, acc_hist, 0.05);
}

// Categorical cardinality above 255 cannot be represented in uint8 bin
// codes; histogram mode must silently fall back to exact growth, making the
// trees identical by construction.
TEST(TreeHistogramTest, HighCardinalityCategoricalFallsBackToExact) {
  const size_t kCard = 300;
  const size_t kRows = 600;
  Dataset train("highcard");
  Rng rng(23);
  std::vector<double> codes(kRows);
  std::vector<double> noise(kRows);
  std::vector<int> labels(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    const auto code = rng.UniformInt(kCard);
    codes[r] = static_cast<double>(code);
    noise[r] = rng.Normal();
    labels[r] = static_cast<int>(code % 2);
  }
  std::vector<std::string> categories(kCard);
  for (size_t c = 0; c < kCard; ++c) categories[c] = "c" + std::to_string(c);
  train.AddCategoricalFeature("big", std::move(codes), std::move(categories));
  train.AddNumericFeature("noise", std::move(noise));
  train.SetLabels(std::move(labels), {"even", "odd"});
  ASSERT_TRUE(train.Validate().ok());
  ASSERT_FALSE(train.Binned()->histogram_safe());

  TreeOptions options;
  options.max_depth = 10;
  options.multiway_categorical = true;
  const auto [exact, hist] = FitPair(train, {}, options);
  ExpectIdenticalOnTrain(train, exact, hist);
}

// A pre-built binned view whose shape disagrees with the training matrix is
// a caller bug and must be rejected, not silently misread.
TEST(TreeHistogramTest, MismatchedBinnedViewRejected) {
  const Dataset big = GridDataset(29, 0.0, 0);
  SyntheticSpec small_spec;
  small_spec.num_instances = 100;
  small_spec.num_informative = 6;
  small_spec.seed = 29;
  const Dataset small = GenerateSynthetic(small_spec);

  DecisionTree tree;
  TreeOptions options;
  options.split_mode = TreeSplitMode::kHistogram;
  const Status status = tree.Fit(
      big.ToRawMatrix(), TreeSchema::FromDataset(big), big.labels(),
      static_cast<int>(big.NumClasses()), {}, options, small.Binned());
  EXPECT_FALSE(status.ok());
}

// TSan race case: concurrent Binned() calls on one Dataset (first call
// builds and caches), plus tree fits reading the shared view from several
// threads, plus a RandomForest fit (whose workers share one view through
// ParallelFor). All trees over the same rows must agree with a reference.
TEST(TreeHistogramTest, ConcurrentBinnedViewSharing) {
  const Dataset train = GridDataset(31, 0.05, 1);
  const Matrix x = train.ToRawMatrix();
  const TreeSchema schema = TreeSchema::FromDataset(train);
  const int k = static_cast<int>(train.NumClasses());
  TreeOptions options;
  options.split_mode = TreeSplitMode::kHistogram;
  options.max_depth = 12;
  options.min_split = 4;
  options.min_leaf = 2;

  DecisionTree reference;
  ASSERT_TRUE(reference.Fit(x, schema, train.labels(), k, {}, options,
                            train.Binned())
                  .ok());
  const std::vector<int> expected = Predictions(reference, x);

  constexpr int kThreads = 4;
  std::vector<DecisionTree> trees(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each worker races on the lazy cache and then trains off the view.
      const std::shared_ptr<const BinnedColumns> binned = train.Binned();
      ASSERT_TRUE(trees[static_cast<size_t>(t)]
                      .Fit(x, schema, train.labels(), k, {}, options, binned)
                      .ok());
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& tree : trees) {
    EXPECT_EQ(Predictions(tree, x), expected);
  }

  RandomForestClassifier forest;
  ParamConfig config;
  config.SetInt("ntree", 16);
  ASSERT_TRUE(forest.Fit(train, config).ok());
  const auto proba = forest.PredictProba(train);
  ASSERT_TRUE(proba.ok());
  EXPECT_EQ(proba.value().size(), train.NumRows());
}

// ---------------------------------------------------------------------------
// SIMD kernel unit tests.
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, SquaredDistanceMatchesScalarReference) {
  Rng rng(47);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                   size_t{25}, size_t{64}, size_t{101}}) {
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(-100.0, 100.0);
      b[i] = rng.Uniform(-100.0, 100.0);
    }
    double expected = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      expected += d * d;
    }
    const double got = SquaredDistance(a.data(), b.data(), n);
    EXPECT_NEAR(got, expected, 1e-9 * (1.0 + expected)) << "n=" << n;
  }
}

TEST(SimdKernelTest, AccumulateBinHistogramMatchesNaiveLoop) {
  Rng rng(53);
  const size_t kRows = 500;
  const size_t kBins = 13;
  const size_t kClasses = 4;
  std::vector<uint8_t> codes(kRows);
  std::vector<int> y(kRows);
  std::vector<double> w(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    // ~10% of rows get the missing code to exercise the overflow slot.
    codes[r] = rng.Bernoulli(0.1)
                   ? BinnedColumns::kMissingBin
                   : static_cast<uint8_t>(rng.UniformInt(kBins));
    y[r] = static_cast<int>(rng.UniformInt(kClasses));
    w[r] = static_cast<double>(rng.UniformInt(4));  // Integer, incl. zero.
  }
  // A strided, shuffled subset of rows, as node partitions produce.
  std::vector<size_t> rows;
  for (size_t r = 0; r < kRows; r += 2) rows.push_back(r);
  rng.Shuffle(&rows);

  std::vector<double> wsum((kBins + 1) * kClasses, 0.0);
  std::vector<uint32_t> cnt(kBins + 1, 0);
  AccumulateBinHistogram(codes.data(), rows.data(), rows.size(), y.data(),
                         w.data(), kClasses, kBins, wsum.data(), cnt.data());

  std::vector<double> want_w((kBins + 1) * kClasses, 0.0);
  std::vector<uint32_t> want_c(kBins + 1, 0);
  for (size_t r : rows) {
    size_t b = codes[r];
    if (b > kBins) b = kBins;
    want_w[b * kClasses + static_cast<size_t>(y[r])] += w[r];
    ++want_c[b];
  }
  for (size_t i = 0; i < wsum.size(); ++i) {
    EXPECT_DOUBLE_EQ(wsum[i], want_w[i]) << "slot " << i;
  }
  for (size_t b = 0; b <= kBins; ++b) {
    EXPECT_EQ(cnt[b], want_c[b]) << "bin " << b;
  }
}

}  // namespace
}  // namespace smartml
