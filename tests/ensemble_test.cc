// Tests for the weighted ensemble.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/ensemble.h"
#include "src/data/metrics.h"
#include "src/data/synthetic.h"
#include "src/ml/knn.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/tree_classifiers.h"

namespace smartml {
namespace {

Dataset MakeData(uint64_t seed = 71) {
  SyntheticSpec spec;
  spec.num_instances = 160;
  spec.num_informative = 4;
  spec.num_classes = 3;
  spec.class_sep = 2.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TEST(EnsembleTest, EmptyEnsembleRejectsPredict) {
  WeightedEnsemble ensemble;
  EXPECT_FALSE(ensemble.PredictProba(MakeData()).ok());
}

TEST(EnsembleTest, FitIsUnsupported) {
  WeightedEnsemble ensemble;
  EXPECT_EQ(ensemble.Fit(MakeData(), {}).code(), StatusCode::kUnimplemented);
}

TEST(EnsembleTest, CombinesMembersWithValidProbabilities) {
  const Dataset d = MakeData();
  auto ensemble = std::make_unique<WeightedEnsemble>();

  auto knn = std::make_unique<KnnClassifier>();
  ASSERT_TRUE(knn->Fit(d, KnnClassifier::Space().DefaultConfig()).ok());
  ensemble->AddMember(std::move(knn), 0.9);

  auto nb = std::make_unique<NaiveBayesClassifier>();
  ASSERT_TRUE(nb->Fit(d, NaiveBayesClassifier::Space().DefaultConfig()).ok());
  ensemble->AddMember(std::move(nb), 0.8);

  EXPECT_EQ(ensemble->NumMembers(), 2u);
  auto proba = ensemble->PredictProba(d);
  ASSERT_TRUE(proba.ok());
  for (const auto& p : *proba) {
    double sum = 0;
    for (double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(EnsembleTest, HighWeightMemberDominates) {
  const Dataset d = MakeData();
  // Member A: real model. Member B: same model but weighted 1000x less.
  auto a = std::make_unique<KnnClassifier>();
  ASSERT_TRUE(a->Fit(d, KnnClassifier::Space().DefaultConfig()).ok());
  auto a_pred = a->Predict(d);
  ASSERT_TRUE(a_pred.ok());

  auto b = std::make_unique<J48Classifier>();
  ASSERT_TRUE(b->Fit(d, J48Classifier::Space().DefaultConfig()).ok());

  WeightedEnsemble ensemble;
  ensemble.AddMember(std::move(a), 1.0);
  ensemble.AddMember(std::move(b), 1e-6);
  auto e_pred = ensemble.Predict(d);
  ASSERT_TRUE(e_pred.ok());
  EXPECT_EQ(*e_pred, *a_pred);  // B's vote is negligible.
}

TEST(EnsembleTest, ZeroAccuracyMemberStillGetsPositiveWeight) {
  // A degenerate 0-accuracy member must not break weight normalization.
  const Dataset d = MakeData();
  auto a = std::make_unique<KnnClassifier>();
  ASSERT_TRUE(a->Fit(d, KnnClassifier::Space().DefaultConfig()).ok());
  auto b = std::make_unique<KnnClassifier>();
  ASSERT_TRUE(b->Fit(d, KnnClassifier::Space().DefaultConfig()).ok());
  WeightedEnsemble ensemble;
  ensemble.AddMember(std::move(a), 0.0);
  ensemble.AddMember(std::move(b), 0.0);
  auto proba = ensemble.PredictProba(d);
  ASSERT_TRUE(proba.ok());
  for (const auto& p : *proba) {
    double sum = 0;
    for (double v : p) {
      EXPECT_TRUE(std::isfinite(v));
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(EnsembleTest, EnsembleAtLeastCompetitiveWithWeakestMember) {
  const Dataset d = MakeData(73);
  // Train members on one half, evaluate on the other.
  std::vector<size_t> first_half, second_half;
  for (size_t r = 0; r < d.NumRows(); ++r) {
    (r % 2 == 0 ? first_half : second_half).push_back(r);
  }
  const Dataset train = d.Subset(first_half);
  const Dataset test = d.Subset(second_half);

  WeightedEnsemble ensemble;
  double weakest = 1.0;
  const std::vector<std::unique_ptr<Classifier>> protos = [] {
    std::vector<std::unique_ptr<Classifier>> v;
    v.push_back(std::make_unique<KnnClassifier>());
    v.push_back(std::make_unique<NaiveBayesClassifier>());
    v.push_back(std::make_unique<J48Classifier>());
    return v;
  }();
  for (const auto& proto : protos) {
    auto member = proto->Clone();
    ASSERT_TRUE(member->Fit(train, ParamConfig()).ok());
    auto pred = member->Predict(test);
    ASSERT_TRUE(pred.ok());
    const double acc = Accuracy(test.labels(), *pred);
    weakest = std::min(weakest, acc);
    ensemble.AddMember(std::move(member), acc);
  }
  auto pred = ensemble.Predict(test);
  ASSERT_TRUE(pred.ok());
  const double ensemble_acc = Accuracy(test.labels(), *pred);
  EXPECT_GE(ensemble_acc, weakest - 0.05);
}

}  // namespace
}  // namespace smartml
