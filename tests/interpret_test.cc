// Tests for the interpretability module (permutation importance and partial
// dependence).
#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/interpret/interpret.h"
#include "src/ml/forest.h"
#include "src/ml/knn.h"

namespace smartml {
namespace {

// Dataset where the informative features carry all the signal.
Dataset SignalAndNoise() {
  SyntheticSpec spec;
  spec.num_instances = 220;
  spec.num_informative = 2;
  spec.num_noise = 3;
  spec.num_classes = 2;
  spec.class_sep = 3.0;
  spec.seed = 55;
  return GenerateSynthetic(spec);
}

TEST(ImportanceTest, InformativeFeaturesRankAboveNoise) {
  const Dataset d = SignalAndNoise();
  RandomForestClassifier forest;
  ASSERT_TRUE(
      forest.Fit(d, RandomForestClassifier::Space().DefaultConfig()).ok());
  auto importances = PermutationImportance(forest, d, 3, 7);
  ASSERT_TRUE(importances.ok());
  ASSERT_EQ(importances->size(), 5u);
  // Sorted descending; the top two should be the informative features.
  EXPECT_GE((*importances)[0].importance, (*importances)[4].importance);
  int informative_in_top2 = 0;
  for (int i = 0; i < 2; ++i) {
    const std::string& name = (*importances)[static_cast<size_t>(i)].feature;
    if (name.rfind("inf", 0) == 0) ++informative_in_top2;
  }
  EXPECT_EQ(informative_in_top2, 2);
}

TEST(ImportanceTest, NoiseFeatureImportanceNearZero) {
  const Dataset d = SignalAndNoise();
  RandomForestClassifier forest;
  ASSERT_TRUE(
      forest.Fit(d, RandomForestClassifier::Space().DefaultConfig()).ok());
  auto importances = PermutationImportance(forest, d, 3, 7);
  ASSERT_TRUE(importances.ok());
  for (const auto& fi : *importances) {
    if (fi.feature.rfind("noise", 0) == 0) {
      EXPECT_NEAR(fi.importance, 0.0, 0.06) << fi.feature;
    }
  }
}

TEST(ImportanceTest, TinyDatasetRejected) {
  Dataset d;
  d.AddNumericFeature("x", {1});
  d.SetLabels({0}, {"a"});
  KnnClassifier knn;
  EXPECT_FALSE(PermutationImportance(knn, d).ok());
}

TEST(PdpTest, ProducesGridOfRequestedSize) {
  const Dataset d = SignalAndNoise();
  KnnClassifier knn;
  ASSERT_TRUE(knn.Fit(d, KnnClassifier::Space().DefaultConfig()).ok());
  auto pd = ComputePartialDependence(knn, d, 0, 1, 10);
  ASSERT_TRUE(pd.ok());
  EXPECT_EQ(pd->grid.size(), 10u);
  EXPECT_EQ(pd->mean_probability.size(), 10u);
  for (double p : pd->mean_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Grid is increasing.
  for (size_t i = 1; i < pd->grid.size(); ++i) {
    EXPECT_GT(pd->grid[i], pd->grid[i - 1]);
  }
}

TEST(PdpTest, InformativeFeatureMovesProbability) {
  const Dataset d = SignalAndNoise();
  RandomForestClassifier forest;
  ASSERT_TRUE(
      forest.Fit(d, RandomForestClassifier::Space().DefaultConfig()).ok());
  auto pd = ComputePartialDependence(forest, d, 0, 1, 8);
  ASSERT_TRUE(pd.ok());
  double lo = 1.0, hi = 0.0;
  for (double p : pd->mean_probability) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi - lo, 0.1);  // Sweeping an informative feature matters.
}

TEST(PdpTest, RejectsCategoricalAndOutOfRange) {
  Dataset d;
  d.AddCategoricalFeature("c", {0, 1, 0, 1}, {"a", "b"});
  d.SetLabels({0, 1, 0, 1}, {"x", "y"});
  KnnClassifier knn;
  ASSERT_TRUE(knn.Fit(d, KnnClassifier::Space().DefaultConfig()).ok());
  EXPECT_FALSE(ComputePartialDependence(knn, d, 0, 0).ok());
  EXPECT_FALSE(ComputePartialDependence(knn, d, 5, 0).ok());
}

}  // namespace
}  // namespace smartml
