// Tests for the knowledge base: records, merging (incremental update),
// weighted-NN nomination, and persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/kb/knowledge_base.h"

namespace smartml {
namespace {

MetaFeatureVector MakeMeta(double base) {
  MetaFeatureVector mf{};
  for (size_t i = 0; i < kNumMetaFeatures; ++i) {
    mf[i] = base + static_cast<double>(i) * 0.1;
  }
  return mf;
}

KbRecord MakeRecord(const std::string& name, double meta_base,
                    std::vector<std::pair<std::string, double>> results) {
  KbRecord record;
  record.dataset_name = name;
  record.meta_features = MakeMeta(meta_base);
  for (auto& [algo, acc] : results) {
    KbAlgorithmResult r;
    r.algorithm = algo;
    r.accuracy = acc;
    r.best_config.SetDouble("p", acc * 10);
    record.results.push_back(std::move(r));
  }
  return record;
}

TEST(KbTest, AddAndFind) {
  KnowledgeBase kb;
  EXPECT_EQ(kb.NumRecords(), 0u);
  kb.AddRecord(MakeRecord("d1", 1.0, {{"svm", 0.9}}));
  EXPECT_EQ(kb.NumRecords(), 1u);
  ASSERT_TRUE(kb.Find("d1").has_value());
  EXPECT_FALSE(kb.Find("d2").has_value());
}

TEST(KbTest, MergeKeepsBetterResult) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("d1", 1.0, {{"svm", 0.7}, {"knn", 0.8}}));
  kb.AddRecord(MakeRecord("d1", 1.0, {{"svm", 0.9}, {"j48", 0.6}}));
  EXPECT_EQ(kb.NumRecords(), 1u);
  const std::optional<KbRecord> r = kb.Find("d1");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->results.size(), 3u);
  for (const auto& result : r->results) {
    if (result.algorithm == "svm") {
      EXPECT_DOUBLE_EQ(result.accuracy, 0.9);  // Upgraded.
    }
    if (result.algorithm == "knn") {
      EXPECT_DOUBLE_EQ(result.accuracy, 0.8);  // Preserved.
    }
  }
}

TEST(KbTest, MergeDoesNotDowngrade) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("d1", 1.0, {{"svm", 0.9}}));
  kb.AddRecord(MakeRecord("d1", 1.0, {{"svm", 0.5}}));
  EXPECT_DOUBLE_EQ(kb.Find("d1")->results[0].accuracy, 0.9);
}

TEST(KbTest, NearestRecordsOrdering) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("near", 1.0, {{"svm", 0.9}}));
  kb.AddRecord(MakeRecord("mid", 3.0, {{"svm", 0.9}}));
  kb.AddRecord(MakeRecord("far", 9.0, {{"svm", 0.9}}));
  const auto neighbors = kb.NearestRecords(MakeMeta(1.1), 3);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].record.dataset_name, "near");
  EXPECT_EQ(neighbors[2].record.dataset_name, "far");
  EXPECT_LE(neighbors[0].distance, neighbors[1].distance);
}

TEST(KbTest, NearestRecordsTiesKeepInsertionOrder) {
  // Three records at the exact same meta-feature point: partial_sort alone
  // is not stable, so the lookup must tie-break on record index to return
  // equal-distance neighbours in deterministic insertion order.
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("first", 2.0, {{"svm", 0.9}}));
  kb.AddRecord(MakeRecord("second", 2.0, {{"knn", 0.8}}));
  kb.AddRecord(MakeRecord("third", 2.0, {{"j48", 0.7}}));
  kb.AddRecord(MakeRecord("far", 50.0, {{"rpart", 0.6}}));
  const auto neighbors = kb.NearestRecords(MakeMeta(2.0), 3);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].record.dataset_name, "first");
  EXPECT_EQ(neighbors[1].record.dataset_name, "second");
  EXPECT_EQ(neighbors[2].record.dataset_name, "third");
  EXPECT_DOUBLE_EQ(neighbors[0].distance, neighbors[2].distance);
}

TEST(KbTest, LookupSeesRecordsAddedAfterPreviousLookup) {
  // The cached normalized index must be invalidated by AddRecord: a lookup,
  // then an insert of a closer record, then the same lookup again must
  // surface the new record first.
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("far", 10.0, {{"svm", 0.9}}));
  kb.AddRecord(MakeRecord("farther", 20.0, {{"svm", 0.9}}));
  auto neighbors = kb.NearestRecords(MakeMeta(1.0), 1);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].record.dataset_name, "far");

  kb.AddRecord(MakeRecord("close", 1.0, {{"knn", 0.8}}));
  neighbors = kb.NearestRecords(MakeMeta(1.0), 1);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].record.dataset_name, "close");

  // Merging into an existing record moves it in meta-feature space too.
  kb.AddRecord(MakeRecord("far", 1.01, {{"svm", 0.95}}));
  neighbors = kb.NearestRecords(MakeMeta(1.0), 2);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[1].record.dataset_name, "far");
}

TEST(KbTest, NeighborCopiesSurviveLaterWrites) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("a", 1.0, {{"svm", 0.9}}));
  auto neighbors = kb.NearestRecords(MakeMeta(1.0), 1);
  auto found = kb.Find("a");
  ASSERT_TRUE(found.has_value());
  // Force reallocation of the internal record vector.
  for (int i = 0; i < 64; ++i) {
    kb.AddRecord(MakeRecord("grow_" + std::to_string(i), 5.0 + i,
                            {{"knn", 0.5}}));
  }
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].record.dataset_name, "a");
  EXPECT_EQ(found->dataset_name, "a");
  EXPECT_DOUBLE_EQ(found->results[0].accuracy, 0.9);
}

TEST(KbTest, MovedFromKbIsEmptyAndUsable) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("d1", 1.0, {{"svm", 0.9}}));
  KnowledgeBase moved(std::move(kb));
  EXPECT_EQ(moved.NumRecords(), 1u);
  EXPECT_TRUE(moved.Find("d1").has_value());
  EXPECT_EQ(moved.NearestRecords(MakeMeta(1.0), 1).size(), 1u);
  // NOLINTNEXTLINE(bugprone-use-after-move): moved-from reuse is the point.
  EXPECT_EQ(kb.NumRecords(), 0u);
  EXPECT_FALSE(kb.Find("d1").has_value());
  EXPECT_TRUE(kb.NearestRecords(MakeMeta(1.0), 1).empty());
  // The moved-from KB accepts new records with a freshly fitted index.
  kb.AddRecord(MakeRecord("d2", 2.0, {{"knn", 0.8}}));
  const auto neighbors = kb.NearestRecords(MakeMeta(2.0), 1);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].record.dataset_name, "d2");
}

TEST(KbTest, NominateEmptyKbReturnsNothing) {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.Nominate(MakeMeta(1.0), {}).empty());
}

TEST(KbTest, NominateRanksByNeighborPerformance) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("similar", 1.0, {{"svm", 0.95}, {"knn", 0.60}}));
  kb.AddRecord(MakeRecord("distant", 50.0, {{"rpart", 0.99}}));
  NominationOptions options;
  options.max_algorithms = 2;
  options.max_neighbors = 1;  // Only the closest dataset contributes.
  const auto nominations = kb.Nominate(MakeMeta(1.05), options);
  ASSERT_EQ(nominations.size(), 2u);
  EXPECT_EQ(nominations[0].algorithm, "svm");
  EXPECT_EQ(nominations[1].algorithm, "knn");
  EXPECT_GT(nominations[0].score, nominations[1].score);
}

TEST(KbTest, NominationCarriesWarmStartConfigs) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("a", 1.0, {{"svm", 0.9}}));
  kb.AddRecord(MakeRecord("b", 1.2, {{"svm", 0.8}}));
  NominationOptions options;
  options.max_algorithms = 1;
  options.max_neighbors = 2;
  const auto nominations = kb.Nominate(MakeMeta(1.1), options);
  ASSERT_EQ(nominations.size(), 1u);
  EXPECT_GE(nominations[0].warm_start_configs.size(), 2u);
  // Best-performing neighbour's config comes first (p = acc * 10).
  EXPECT_NEAR(nominations[0].warm_start_configs[0].GetDouble("p", 0), 9.0,
              1e-9);
}

TEST(KbTest, PerformanceWeightingChangesRanking) {
  // Algorithm A: mediocre on the very nearest dataset. Algorithm B:
  // excellent on a slightly farther one. Performance weighting should be
  // able to flip the ranking relative to distance-only.
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("nearest", 1.00, {{"weak_algo", 0.20}}));
  kb.AddRecord(MakeRecord("close", 1.18, {{"strong_algo", 0.99}}));

  NominationOptions weighted;
  weighted.max_algorithms = 2;
  weighted.max_neighbors = 2;
  weighted.performance_weight = 3.0;  // Emphasize performance magnitude.
  const auto with_perf = kb.Nominate(MakeMeta(1.02), weighted);
  ASSERT_EQ(with_perf.size(), 2u);
  EXPECT_EQ(with_perf[0].algorithm, "strong_algo");

  NominationOptions unweighted = weighted;
  unweighted.performance_weight = 0.0;  // Distance only.
  const auto without_perf = kb.Nominate(MakeMeta(1.02), unweighted);
  ASSERT_EQ(without_perf.size(), 2u);
  EXPECT_EQ(without_perf[0].algorithm, "weak_algo");
}

TEST(KbTest, MaxAlgorithmsHonored) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord(
      "d", 1.0, {{"a", 0.9}, {"b", 0.8}, {"c", 0.7}, {"e", 0.6}}));
  NominationOptions options;
  options.max_algorithms = 2;
  EXPECT_EQ(kb.Nominate(MakeMeta(1.0), options).size(), 2u);
}

TEST(KbTest, SerializeRoundTrip) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("d1", 1.0, {{"svm", 0.9}, {"knn", 0.7}}));
  kb.AddRecord(MakeRecord("d2", 4.0, {{"j48", 0.85}}));
  auto back = KnowledgeBase::Deserialize(kb.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumRecords(), 2u);
  const std::optional<KbRecord> r = back->Find("d1");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->results.size(), 2u);
  EXPECT_DOUBLE_EQ(r->results[0].accuracy, 0.9);
  EXPECT_NEAR(r->results[0].best_config.GetDouble("p", 0), 9.0, 1e-9);
  for (size_t i = 0; i < kNumMetaFeatures; ++i) {
    EXPECT_NEAR(r->meta_features[i], MakeMeta(1.0)[i], 1e-9);
  }
}

TEST(KbTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(KnowledgeBase::Deserialize("not a kb").ok());
  EXPECT_FALSE(KnowledgeBase::Deserialize("").ok());
  EXPECT_FALSE(
      KnowledgeBase::Deserialize("smartml-kb v1\nrecord x\n").ok());
  EXPECT_FALSE(
      KnowledgeBase::Deserialize("smartml-kb v1\nmeta 1 2 3\n").ok());
}

TEST(KbTest, EmptyKbSerializes) {
  KnowledgeBase kb;
  auto back = KnowledgeBase::Deserialize(kb.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRecords(), 0u);
}

TEST(KbTest, FileRoundTrip) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("disk", 2.0, {{"rda", 0.75}}));
  const std::string path = testing::TempDir() + "/smartml_kb_test.txt";
  ASSERT_TRUE(kb.SaveToFile(path).ok());
  auto back = KnowledgeBase::LoadFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRecords(), 1u);
  EXPECT_TRUE(back->Find("disk").has_value());
  std::remove(path.c_str());
}

TEST(KbTest, LoadMissingFileFails) {
  EXPECT_FALSE(KnowledgeBase::LoadFromFile("/no/such/file.kb").ok());
}

}  // namespace
}  // namespace smartml
