// Tests for the framework extensions: tunable optimization metric,
// ensemble strategies, and landmarking meta-features (+ their KB
// integration).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/smartml.h"
#include "src/data/synthetic.h"
#include "src/metafeatures/landmarking.h"
#include "src/ml/knn.h"
#include "src/tuning/objective.h"

namespace smartml {
namespace {

Dataset MakeData(uint64_t seed = 301, size_t n = 120) {
  SyntheticSpec spec;
  spec.num_instances = n;
  spec.num_informative = 4;
  spec.num_classes = 2;
  spec.class_sep = 2.5;
  spec.seed = seed;
  spec.name = "ext_" + std::to_string(seed);
  return GenerateSynthetic(spec);
}

// ---------------------------------------------------------------------------
// Tuning metrics
// ---------------------------------------------------------------------------

TEST(MetricTest, NamesRoundTrip) {
  for (TuneMetric metric : {TuneMetric::kAccuracy, TuneMetric::kMacroF1,
                            TuneMetric::kKappa, TuneMetric::kLogLoss}) {
    auto parsed = ParseTuneMetric(TuneMetricName(metric));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, metric);
  }
  EXPECT_FALSE(ParseTuneMetric("auc").ok());
}

class MetricObjectiveTest : public testing::TestWithParam<TuneMetric> {};

TEST_P(MetricObjectiveTest, CostInUnitIntervalAndLowOnEasyData) {
  const Dataset d = MakeData(311, 140);
  KnnClassifier knn;
  auto objective =
      ClassifierObjective::Create(knn, d, 2, 7, GetParam());
  ASSERT_TRUE(objective.ok());
  auto cost = (*objective)->EvaluateFold(KnnClassifier::Space().DefaultConfig(),
                                         0);
  ASSERT_TRUE(cost.ok());
  EXPECT_GE(*cost, 0.0);
  EXPECT_LE(*cost, 1.0);
  EXPECT_LT(*cost, 0.45) << TuneMetricName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricObjectiveTest,
                         testing::Values(TuneMetric::kAccuracy,
                                         TuneMetric::kMacroF1,
                                         TuneMetric::kKappa,
                                         TuneMetric::kLogLoss),
                         [](const auto& info) {
                           return std::string(TuneMetricName(info.param));
                         });

TEST(MetricTest, SmartMlRunsWithNonDefaultMetric) {
  SmartMlOptions options;
  options.max_evaluations = 9;
  options.cv_folds = 2;
  options.metric = TuneMetric::kMacroF1;
  options.cold_start_algorithms = {"knn", "rpart"};
  SmartML framework(options);
  auto result = framework.Run(MakeData(313));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->best_validation_accuracy, 0.6);
}

// ---------------------------------------------------------------------------
// Ensemble strategies
// ---------------------------------------------------------------------------

class EnsembleStrategyTest
    : public testing::TestWithParam<SmartMlOptions::EnsembleStrategy> {};

TEST_P(EnsembleStrategyTest, ProducesAWorkingEnsemble) {
  SmartMlOptions options;
  options.max_evaluations = 12;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn", "naive_bayes", "rpart"};
  options.enable_ensembling = true;
  options.ensemble_strategy = GetParam();
  SmartML framework(options);
  auto result = framework.Run(MakeData(317, 150));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->ensemble, nullptr);
  EXPECT_GE(result->ensemble->NumMembers(), 2u);
  EXPECT_GT(result->ensemble_validation_accuracy, 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EnsembleStrategyTest,
    testing::Values(SmartMlOptions::EnsembleStrategy::kAccuracyWeighted,
                    SmartMlOptions::EnsembleStrategy::kSoftmax,
                    SmartMlOptions::EnsembleStrategy::kGreedy),
    [](const auto& info) {
      switch (info.param) {
        case SmartMlOptions::EnsembleStrategy::kAccuracyWeighted:
          return std::string("accuracy");
        case SmartMlOptions::EnsembleStrategy::kSoftmax:
          return std::string("softmax");
        case SmartMlOptions::EnsembleStrategy::kGreedy:
          return std::string("greedy");
      }
      return std::string("unknown");
    });

// ---------------------------------------------------------------------------
// Landmarking
// ---------------------------------------------------------------------------

TEST(LandmarkingTest, ProducesFourAccuracies) {
  auto lm = ExtractLandmarkers(MakeData(331, 200));
  ASSERT_TRUE(lm.ok()) << lm.status().ToString();
  for (double v : *lm) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_EQ(LandmarkerNames().size(), kNumLandmarkers);
}

TEST(LandmarkingTest, EasyDataGivesHighLandmarks) {
  SyntheticSpec spec;
  spec.num_instances = 200;
  spec.num_informative = 3;
  spec.class_sep = 5.0;
  spec.seed = 337;
  auto lm = ExtractLandmarkers(GenerateSynthetic(spec));
  ASSERT_TRUE(lm.ok());
  // 1NN and LDA both near-perfect on well-separated blobs.
  EXPECT_GT((*lm)[0], 0.9);
  EXPECT_GT((*lm)[3], 0.9);
}

TEST(LandmarkingTest, DistinguishesLinearFromSpiralStructure) {
  SyntheticSpec linear;
  linear.num_instances = 300;
  linear.num_informative = 2;
  linear.class_sep = 3.0;
  linear.seed = 341;
  SyntheticSpec spiral = linear;
  spiral.kind = SyntheticKind::kSpirals;
  spiral.class_sep = 3.0;  // Low spiral noise: locally separable, globally
                           // nonlinear — the worst case for LDA.
  auto lm_linear = ExtractLandmarkers(GenerateSynthetic(linear));
  auto lm_spiral = ExtractLandmarkers(GenerateSynthetic(spiral));
  ASSERT_TRUE(lm_linear.ok() && lm_spiral.ok());
  // On spirals, LDA's landmark collapses relative to 1NN; on blobs both are
  // high. The *gap* (1nn - lda) separates the two geometries.
  const double gap_linear = (*lm_linear)[0] - (*lm_linear)[3];
  const double gap_spiral = (*lm_spiral)[0] - (*lm_spiral)[3];
  EXPECT_GT(gap_spiral, gap_linear + 0.1);
}

TEST(LandmarkingTest, DeterministicForSeed) {
  const Dataset d = MakeData(347, 150);
  auto a = ExtractLandmarkers(d, 9);
  auto b = ExtractLandmarkers(d, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < kNumLandmarkers; ++i) {
    EXPECT_DOUBLE_EQ((*a)[i], (*b)[i]);
  }
}

TEST(LandmarkingTest, SubsamplingKeepsItCheap) {
  auto lm = ExtractLandmarkers(MakeData(349, 2000), 9, /*max_rows=*/100);
  ASSERT_TRUE(lm.ok());
}

TEST(LandmarkingTest, SerializationRoundTrip) {
  auto lm = ExtractLandmarkers(MakeData(353, 100));
  ASSERT_TRUE(lm.ok());
  auto back = LandmarksFromString(LandmarksToString(*lm));
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < kNumLandmarkers; ++i) {
    EXPECT_NEAR((*lm)[i], (*back)[i], 1e-9);
  }
  EXPECT_FALSE(LandmarksFromString("1 2").ok());
}

TEST(LandmarkingTest, TinyDatasetRejected) {
  Dataset d;
  d.AddNumericFeature("x", {1, 2, 3});
  d.SetLabels({0, 1, 0}, {"a", "b"});
  EXPECT_FALSE(ExtractLandmarkers(d).ok());
}

TEST(LandmarkingTest, KbRoundTripsLandmarks) {
  KnowledgeBase kb;
  KbRecord record;
  record.dataset_name = "lm";
  record.has_landmarks = true;
  record.landmarks = {0.9, 0.8, 0.7, 0.6};
  KbAlgorithmResult r;
  r.algorithm = "knn";
  r.accuracy = 0.9;
  record.results.push_back(r);
  kb.AddRecord(record);
  auto back = KnowledgeBase::Deserialize(kb.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const std::optional<KbRecord> loaded = back->Find("lm");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(loaded->has_landmarks);
  EXPECT_NEAR(loaded->landmarks[0], 0.9, 1e-9);
}

TEST(LandmarkingTest, LandmarkWeightChangesNeighborRanking) {
  // Two records equidistant in meta-feature space; landmarks break the tie.
  KnowledgeBase kb;
  auto make = [](const std::string& name, double mf_value,
                 LandmarkVector lm) {
    KbRecord record;
    record.dataset_name = name;
    record.meta_features.fill(mf_value);
    record.has_landmarks = true;
    record.landmarks = lm;
    KbAlgorithmResult r;
    r.algorithm = name + "_algo";
    r.accuracy = 0.9;
    record.results.push_back(r);
    return record;
  };
  kb.AddRecord(make("near_lm", 1.0, {0.9, 0.9, 0.9, 0.9}));
  kb.AddRecord(make("far_lm", 1.0, {0.1, 0.1, 0.1, 0.1}));

  MetaFeatureVector query{};
  query.fill(1.0);
  const LandmarkVector query_lm = {0.9, 0.9, 0.9, 0.9};
  const auto ranked = kb.NearestRecords(query, &query_lm, 3.0, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].record.dataset_name, "near_lm");
  EXPECT_LT(ranked[0].distance, ranked[1].distance);
}

TEST(LandmarkingTest, EndToEndThroughSmartML) {
  SmartMlOptions options;
  options.max_evaluations = 9;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn", "rpart"};
  options.use_landmarking = true;
  SmartML framework(options);
  auto first = framework.Run(MakeData(359, 140));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->has_landmarks);
  // The KB record carries the landmarks.
  ASSERT_EQ(framework.kb().NumRecords(), 1u);
  EXPECT_TRUE(framework.kb().SnapshotRecords()[0].has_landmarks);
  // A second run nominates via the combined distance.
  auto second = framework.Run(MakeData(361, 140));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->used_meta_learning);
}

}  // namespace
}  // namespace smartml
