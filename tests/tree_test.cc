// Tests for the shared decision-tree engine.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/data/synthetic.h"
#include "src/ml/decision_tree.h"

namespace smartml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TreeSchema schema_all_numeric() {
  TreeSchema schema;
  schema.categorical = {false};
  schema.cardinalities = {0};
  return schema;
}

// XOR-ish dataset: perfectly learnable by a depth-2 tree.
void MakeXor(Matrix* x, std::vector<int>* y, TreeSchema* schema) {
  std::vector<std::vector<double>> rows;
  y->clear();
  for (int i = 0; i < 40; ++i) {
    const double a = (i % 2 == 0) ? 0.0 : 1.0;
    const double b = ((i / 2) % 2 == 0) ? 0.0 : 1.0;
    rows.push_back({a + 0.01 * i, b + 0.005 * i});
    y->push_back(static_cast<int>(a) ^ static_cast<int>(b));
  }
  *x = Matrix::FromRows(rows);
  schema->categorical = {false, false};
  schema->cardinalities = {0, 0};
}

TEST(TreeTest, LearnsXorPerfectly) {
  Matrix x;
  std::vector<int> y;
  TreeSchema schema;
  MakeXor(&x, &y, &schema);
  DecisionTree tree;
  TreeOptions options;
  // Greedy impurity splits cannot cut XOR cleanly in two levels (every
  // single split has near-zero gain), so the tree carves the quadrants with
  // several splits; allow it the depth to do so.
  options.max_depth = 40;
  ASSERT_TRUE(tree.Fit(x, schema, y, 2, {}, options).ok());
  for (size_t r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(tree.PredictRow(x.RowPtr(r)), y[r]) << r;
  }
}

TEST(TreeTest, PureNodeBecomesLeaf) {
  const Matrix x = Matrix::FromRows({{1}, {2}, {3}});
  TreeSchema schema;
  schema.categorical = {false};
  schema.cardinalities = {0};
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, schema, {0, 0, 0}, 1, {}, {}).ok());
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.Depth(), 0);
}

TEST(TreeTest, MaxDepthRespected) {
  SyntheticSpec spec;
  spec.num_instances = 300;
  spec.num_informative = 5;
  spec.num_classes = 3;
  spec.class_sep = 0.8;
  const Dataset d = GenerateSynthetic(spec);
  DecisionTree tree;
  TreeOptions options;
  options.max_depth = 3;
  ASSERT_TRUE(tree.Fit(d.ToRawMatrix(), TreeSchema::FromDataset(d),
                       d.labels(), 3, {}, options)
                  .ok());
  EXPECT_LE(tree.Depth(), 3);
}

TEST(TreeTest, MinLeafRespected) {
  SyntheticSpec spec;
  spec.num_instances = 200;
  spec.num_classes = 2;
  const Dataset d = GenerateSynthetic(spec);
  DecisionTree tree;
  TreeOptions options;
  options.min_leaf = 40;
  ASSERT_TRUE(tree.Fit(d.ToRawMatrix(), TreeSchema::FromDataset(d),
                       d.labels(), 2, {}, options)
                  .ok());
  // With min_leaf 40 on 200 rows the tree can have at most 5 leaves.
  EXPECT_LE(tree.NumLeaves(), 5u);
}

TEST(TreeTest, PruningShrinksNoisyTree) {
  SyntheticSpec spec;
  spec.num_instances = 300;
  spec.num_informative = 4;
  spec.num_classes = 2;
  spec.label_noise = 0.25;
  spec.class_sep = 0.8;
  spec.seed = 9;
  const Dataset d = GenerateSynthetic(spec);
  const Matrix x = d.ToRawMatrix();
  const TreeSchema schema = TreeSchema::FromDataset(d);

  TreeOptions unpruned;
  unpruned.criterion = TreeCriterion::kGainRatio;
  DecisionTree big;
  ASSERT_TRUE(big.Fit(x, schema, d.labels(), 2, {}, unpruned).ok());

  TreeOptions pruned = unpruned;
  pruned.confidence_factor = 0.25;
  DecisionTree small;
  ASSERT_TRUE(small.Fit(x, schema, d.labels(), 2, {}, pruned).ok());

  EXPECT_LT(small.NumLeaves(), big.NumLeaves());
}

TEST(TreeTest, CpGateStopsWeakSplits) {
  SyntheticSpec spec;
  spec.num_instances = 300;
  spec.num_classes = 2;
  spec.label_noise = 0.3;
  spec.class_sep = 0.6;
  const Dataset d = GenerateSynthetic(spec);
  TreeOptions loose;
  DecisionTree big;
  ASSERT_TRUE(big.Fit(d.ToRawMatrix(), TreeSchema::FromDataset(d), d.labels(),
                      2, {}, loose)
                  .ok());
  TreeOptions strict = loose;
  strict.min_impurity_decrease = 0.1;
  DecisionTree small;
  ASSERT_TRUE(small.Fit(d.ToRawMatrix(), TreeSchema::FromDataset(d),
                        d.labels(), 2, {}, strict)
                  .ok());
  EXPECT_LT(small.NumNodes(), big.NumNodes());
}

TEST(TreeTest, MultiwayCategoricalSplit) {
  // A 3-category feature that fully determines the class.
  Matrix x(60, 1);
  std::vector<int> y(60);
  for (size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<double>(i % 3);
    y[i] = static_cast<int>(i % 3);
  }
  TreeSchema schema;
  schema.categorical = {true};
  schema.cardinalities = {3};
  TreeOptions options;
  options.criterion = TreeCriterion::kGainRatio;
  options.multiway_categorical = true;
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, schema, y, 3, {}, options).ok());
  EXPECT_EQ(tree.Depth(), 1);  // One multiway split suffices.
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(tree.PredictRow(x.RowPtr(i)), y[i]);
  }
}

TEST(TreeTest, BinaryCategoricalSplit) {
  Matrix x(40, 1);
  std::vector<int> y(40);
  for (size_t i = 0; i < 40; ++i) {
    x(i, 0) = static_cast<double>(i % 4);
    y[i] = (i % 4 == 2) ? 1 : 0;  // Only category 2 is positive.
  }
  TreeSchema schema;
  schema.categorical = {true};
  schema.cardinalities = {4};
  TreeOptions options;
  options.multiway_categorical = false;
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, schema, y, 2, {}, options).ok());
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(tree.PredictRow(x.RowPtr(i)), y[i]);
  }
}

TEST(TreeTest, MissingValuesRoutedAtPredictTime) {
  Matrix x;
  std::vector<int> y;
  TreeSchema schema;
  MakeXor(&x, &y, &schema);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, schema, y, 2, {}, {}).ok());
  const double row[2] = {kNaN, kNaN};
  const int pred = tree.PredictRow(row);
  EXPECT_TRUE(pred == 0 || pred == 1);  // Must not crash, returns a class.
  const auto proba = tree.PredictProbaRow(row);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(TreeTest, SampleWeightsChangeTheTree) {
  // Weighting class-1 rows heavily shifts leaf majorities.
  Matrix x(20, 1);
  std::vector<int> y(20);
  for (size_t i = 0; i < 20; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 15 ? 0 : 1;  // Majority class 0.
  }
  TreeSchema schema;
  schema.categorical = {false};
  schema.cardinalities = {0};
  TreeOptions options;
  options.max_depth = 0;  // Force a stump: prediction = weighted majority.
  std::vector<double> w(20, 1.0);
  DecisionTree plain;
  ASSERT_TRUE(plain.Fit(x, schema, y, 2, w, options).ok());
  EXPECT_EQ(plain.PredictRow(x.RowPtr(0)), 0);
  for (size_t i = 15; i < 20; ++i) w[i] = 10.0;
  DecisionTree weighted;
  ASSERT_TRUE(weighted.Fit(x, schema, y, 2, w, options).ok());
  EXPECT_EQ(weighted.PredictRow(x.RowPtr(0)), 1);
}

TEST(TreeTest, ZeroWeightRowsIgnored) {
  Matrix x(10, 1);
  std::vector<int> y(10);
  std::vector<double> w(10, 1.0);
  for (size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 5 ? 0 : 1;
  }
  // Zero out all class-1 rows: tree should see a single class.
  for (size_t i = 5; i < 10; ++i) w[i] = 0.0;
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, schema_all_numeric(), y, 2, w, {}).ok());
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.PredictRow(x.RowPtr(9)), 0);
}

TEST(TreeTest, AllZeroWeightsRejected) {
  Matrix x(4, 1);
  DecisionTree tree;
  EXPECT_FALSE(
      tree.Fit(x, schema_all_numeric(), {0, 0, 1, 1}, 2,
               {0, 0, 0, 0}, {})
          .ok());
}

TEST(TreeTest, LeafRuleExtraction) {
  Matrix x;
  std::vector<int> y;
  TreeSchema schema;
  MakeXor(&x, &y, &schema);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, schema, y, 2, {}, {}).ok());
  const auto rules = tree.ExtractLeafRules();
  EXPECT_EQ(rules.size(), tree.NumLeaves());
  // Sorted heaviest first.
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_GE(rules[i - 1].weight, rules[i].weight);
  }
  // Every rule has at least one condition (root is not a leaf here).
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.conditions.empty());
  }
}

TEST(TreeTest, FeatureImportancesFavorInformativeFeature) {
  // Feature 0 fully determines the label; feature 1 is noise.
  Matrix x(100, 2);
  std::vector<int> y(100);
  Rng rng(3);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i % 2);
    x(i, 1) = rng.Normal();
    y[i] = static_cast<int>(i % 2);
  }
  TreeSchema schema;
  schema.categorical = {false, false};
  schema.cardinalities = {0, 0};
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, schema, y, 2, {}, {}).ok());
  const auto imp = tree.FeatureImportances(2);
  EXPECT_GT(imp[0], imp[1]);
}

TEST(TreeTest, RejectsBadInput) {
  DecisionTree tree;
  Matrix x(3, 1);
  TreeSchema schema;
  schema.categorical = {false};
  schema.cardinalities = {0};
  EXPECT_FALSE(tree.Fit(x, schema, {0, 1}, 2, {}, {}).ok());  // y mismatch.
  TreeSchema bad;
  bad.categorical = {false, false};
  bad.cardinalities = {0, 0};
  EXPECT_FALSE(tree.Fit(x, bad, {0, 1, 0}, 2, {}, {}).ok());  // schema.
}

// Regression: with two adjacent representable doubles the naive midpoint
// 0.5 * (lo + hi) rounds (ties-to-even) up to hi itself, so `v <= t` held
// for BOTH values, every row routed left, and the node degenerated into a
// leaf that got half the training rows wrong. SplitMidpoint clamps the
// threshold below hi so the classes separate.
TEST(TreeTest, AdjacentDoubleValuesStillSplit) {
  const double eps = std::numeric_limits<double>::epsilon();
  const double lo = 1.0 + eps;        // Odd mantissa.
  const double hi = 1.0 + 2.0 * eps;  // The next double up; even mantissa.
  ASSERT_EQ(std::nextafter(lo, 2.0), hi);
  ASSERT_GE(0.5 * (lo + hi), hi);  // The naive midpoint IS the bug.
  const double t = SplitMidpoint(lo, hi);
  EXPECT_GE(t, lo);
  EXPECT_LT(t, hi);

  Matrix x(4, 1);
  x(0, 0) = lo;
  x(1, 0) = lo;
  x(2, 0) = hi;
  x(3, 0) = hi;
  const std::vector<int> y = {0, 0, 1, 1};
  for (TreeSplitMode mode :
       {TreeSplitMode::kExact, TreeSplitMode::kHistogram}) {
    SCOPED_TRACE(static_cast<int>(mode));
    TreeOptions options;
    options.split_mode = mode;
    DecisionTree tree;
    ASSERT_TRUE(tree.Fit(x, schema_all_numeric(), y, 2, {}, options).ok());
    EXPECT_EQ(tree.NumLeaves(), 2u);
    for (size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(tree.PredictRow(x.RowPtr(r)), y[r]) << "row " << r;
    }
  }
}

// SplitMidpoint must always land strictly below the upper value and at or
// above the lower one, across magnitudes and signs.
TEST(TreeTest, SplitMidpointStaysInHalfOpenInterval) {
  Rng rng(71);
  for (int i = 0; i < 2000; ++i) {
    const int scale = static_cast<int>(rng.UniformInt(-300, 300));
    double lo = rng.Uniform(-1.0, 1.0) * std::pow(10.0, scale);
    // Mix adjacent pairs (the hard case) with well-separated ones.
    double hi = (i % 2 == 0) ? std::nextafter(lo, 1e308)
                             : lo + std::fabs(lo) * rng.Uniform(0.0, 2.0) +
                                   rng.Uniform(0.0, 1.0);
    if (!(lo < hi)) continue;
    const double t = SplitMidpoint(lo, hi);
    ASSERT_GE(t, lo) << "lo=" << lo << " hi=" << hi;
    ASSERT_LT(t, hi) << "lo=" << lo << " hi=" << hi;
  }
}

// Regression: near-identical (but distinct) adjacent values used to be
// skipped by an epsilon-based tie guard, silently discarding legal split
// boundaries. Distinct doubles are now always split candidates.
TEST(TreeTest, TinyValueGapsAreStillSplitCandidates) {
  // Values differ by ~1e-305 — far below any fixed epsilon.
  const double a = 1e-305;
  const double b = 2e-305;
  Matrix x(4, 1);
  x(0, 0) = a;
  x(1, 0) = a;
  x(2, 0) = b;
  x(3, 0) = b;
  const std::vector<int> y = {0, 0, 1, 1};
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, schema_all_numeric(), y, 2, {}, {}).ok());
  EXPECT_EQ(tree.NumLeaves(), 2u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(tree.PredictRow(x.RowPtr(r)), y[r]) << "row " << r;
  }
}

}  // namespace
}  // namespace smartml
