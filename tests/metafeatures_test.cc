// Tests for the 25 meta-features and their normalizer.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/data/synthetic.h"
#include "src/metafeatures/metafeature_cache.h"
#include "src/metafeatures/metafeatures.h"
#include "src/obs/metrics.h"

namespace smartml {
namespace {

Dataset MakeMixedDataset() {
  SyntheticSpec spec;
  spec.num_instances = 200;
  spec.num_informative = 4;
  spec.num_noise = 2;
  spec.num_categorical = 2;
  spec.categorical_cardinality = 3;
  spec.num_classes = 4;
  spec.seed = 33;
  return GenerateSynthetic(spec);
}

TEST(MetaFeaturesTest, ExactlyTwentyFive) {
  EXPECT_EQ(kNumMetaFeatures, 25u);
  EXPECT_EQ(MetaFeatureNames().size(), 25u);
}

TEST(MetaFeaturesTest, BasicCountsCorrect) {
  const Dataset d = MakeMixedDataset();
  auto mf = ExtractMetaFeatures(d);
  ASSERT_TRUE(mf.ok());
  EXPECT_DOUBLE_EQ((*mf)[0], 200.0);                    // num_instances
  EXPECT_NEAR((*mf)[1], std::log(200.0), 1e-12);        // log
  EXPECT_DOUBLE_EQ((*mf)[2], 8.0);                      // num_features
  EXPECT_DOUBLE_EQ((*mf)[4], 4.0);                      // num_classes
  EXPECT_DOUBLE_EQ((*mf)[5], 6.0);                      // numeric
  EXPECT_DOUBLE_EQ((*mf)[6], 2.0);                      // categorical
  EXPECT_NEAR((*mf)[7] + (*mf)[8], 1.0, 1e-12);         // Ratios sum to 1.
  EXPECT_NEAR((*mf)[9], 8.0 / 200.0, 1e-12);            // dimensionality
}

TEST(MetaFeaturesTest, ClassEntropyBalancedBinary) {
  Dataset d("bal");
  d.AddNumericFeature("x", {1, 2, 3, 4});
  d.SetLabels({0, 1, 0, 1}, {"a", "b"});
  auto mf = ExtractMetaFeatures(d);
  ASSERT_TRUE(mf.ok());
  EXPECT_NEAR((*mf)[11], 1.0, 1e-12);  // log2(2) bits.
  EXPECT_NEAR((*mf)[12], 1.0, 1e-12);  // Imbalance ratio 1.
  EXPECT_NEAR((*mf)[13], 0.5, 1e-12);
  EXPECT_NEAR((*mf)[14], 0.5, 1e-12);
}

TEST(MetaFeaturesTest, SymbolStatistics) {
  Dataset d("sym");
  d.AddCategoricalFeature("c2", {0, 1}, {"a", "b"});
  d.AddCategoricalFeature("c4", {0, 1}, {"a", "b", "c", "d"});
  d.SetLabels({0, 1}, {"x", "y"});
  auto mf = ExtractMetaFeatures(d);
  ASSERT_TRUE(mf.ok());
  EXPECT_DOUBLE_EQ((*mf)[21], 3.0);  // mean
  EXPECT_DOUBLE_EQ((*mf)[22], 2.0);  // min
  EXPECT_DOUBLE_EQ((*mf)[23], 4.0);  // max
  EXPECT_DOUBLE_EQ((*mf)[24], 6.0);  // sum
}

TEST(MetaFeaturesTest, SkewnessOfSymmetricDataNearZero) {
  Dataset d("sk");
  Rng rng(3);
  std::vector<double> values(2000);
  for (double& v : values) v = rng.Normal();
  d.AddNumericFeature("x", values);
  d.SetLabels(std::vector<int>(2000, 0), {"y"});
  auto mf = ExtractMetaFeatures(d);
  ASSERT_TRUE(mf.ok());
  EXPECT_NEAR((*mf)[15], 0.0, 0.15);  // skew mean
  EXPECT_NEAR((*mf)[18], 0.0, 0.30);  // kurtosis mean (excess)
}

TEST(MetaFeaturesTest, InvariantToRowPermutation) {
  const Dataset d = MakeMixedDataset();
  auto mf1 = ExtractMetaFeatures(d);
  Rng rng(7);
  std::vector<size_t> perm = rng.Permutation(d.NumRows());
  const Dataset shuffled = d.Subset(perm);
  auto mf2 = ExtractMetaFeatures(shuffled);
  ASSERT_TRUE(mf1.ok() && mf2.ok());
  for (size_t i = 0; i < kNumMetaFeatures; ++i) {
    EXPECT_NEAR((*mf1)[i], (*mf2)[i], 1e-9) << MetaFeatureNames()[i];
  }
}

TEST(MetaFeaturesTest, MissingRatio) {
  Dataset d("miss");
  d.AddNumericFeature("x", {1, std::nan(""), 3, std::nan("")});
  d.SetLabels({0, 0, 1, 1}, {"a", "b"});
  auto mf = ExtractMetaFeatures(d);
  ASSERT_TRUE(mf.ok());
  EXPECT_NEAR((*mf)[10], 0.5, 1e-12);
}

TEST(MetaFeaturesTest, EmptyDatasetRejected) {
  Dataset d;
  EXPECT_FALSE(ExtractMetaFeatures(d).ok());
}

TEST(MetaFeaturesTest, SerializationRoundTrip) {
  const Dataset d = MakeMixedDataset();
  auto mf = ExtractMetaFeatures(d);
  ASSERT_TRUE(mf.ok());
  auto back = MetaFeaturesFromString(MetaFeaturesToString(*mf));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  for (size_t i = 0; i < kNumMetaFeatures; ++i) {
    EXPECT_NEAR((*mf)[i], (*back)[i], 1e-9);
  }
}

TEST(MetaFeaturesTest, DeserializeRejectsWrongArity) {
  EXPECT_FALSE(MetaFeaturesFromString("1 2 3").ok());
  EXPECT_FALSE(MetaFeaturesFromString("").ok());
}

TEST(MetaFeaturesTest, DistanceZeroToSelf) {
  const Dataset d = MakeMixedDataset();
  auto mf = ExtractMetaFeatures(d);
  ASSERT_TRUE(mf.ok());
  EXPECT_DOUBLE_EQ(MetaFeatureDistance(*mf, *mf), 0.0);
}

TEST(NormalizerTest, ZScoresFittedVectors) {
  std::vector<MetaFeatureVector> vectors(10);
  Rng rng(11);
  for (auto& v : vectors) {
    for (double& x : v) x = rng.Uniform(0, 1000);
  }
  MetaFeatureNormalizer normalizer;
  normalizer.Fit(vectors);
  // Mean of normalized vectors ~ 0, stddev ~ 1.
  MetaFeatureVector mean{};
  for (const auto& v : vectors) {
    const MetaFeatureVector z = normalizer.Apply(v);
    for (size_t i = 0; i < kNumMetaFeatures; ++i) mean[i] += z[i];
  }
  for (double m : mean) EXPECT_NEAR(m / 10.0, 0.0, 1e-9);
}

TEST(NormalizerTest, ConstantDimensionDoesNotBlowUp) {
  std::vector<MetaFeatureVector> vectors(5);
  for (auto& v : vectors) v.fill(3.0);
  MetaFeatureNormalizer normalizer;
  normalizer.Fit(vectors);
  const MetaFeatureVector z = normalizer.Apply(vectors[0]);
  for (double x : z) EXPECT_TRUE(std::isfinite(x));
}

TEST(NormalizerTest, DistanceBecomesScaleFree) {
  // Two datasets differing hugely in instance count but otherwise similar
  // should be closer after normalization than a dataset differing in many
  // normalized dimensions.
  std::vector<MetaFeatureVector> all;
  MetaFeatureVector a{}, b{}, c{};
  a.fill(1.0);
  b.fill(1.0);
  c.fill(5.0);
  a[0] = 100;
  b[0] = 90000;  // Same shape, vastly more rows.
  c[0] = 100;
  all = {a, b, c};
  MetaFeatureNormalizer n;
  n.Fit(all);
  const double dist_ab = MetaFeatureDistance(n.Apply(a), n.Apply(b));
  const double dist_ac = MetaFeatureDistance(n.Apply(a), n.Apply(c));
  EXPECT_LT(dist_ab, dist_ac);
}


// ---------------------------------------------------------------------------
// MetaFeatureCache: content-hash memoization of extraction
// ---------------------------------------------------------------------------

uint64_t CacheCounter(MetricsRegistry* registry, const char* name,
                      const char* help) {
  return registry->GetCounter(name, help)->Value();
}

struct CacheStats {
  uint64_t hits;
  uint64_t misses;
};

CacheStats StatsOf(MetricsRegistry* registry) {
  return {CacheCounter(registry, "smartml_metafeature_cache_hits_total",
                       "Meta-feature/landmark extractions served from the "
                       "content-hash cache."),
          CacheCounter(registry, "smartml_metafeature_cache_misses_total",
                       "Meta-feature/landmark extractions that had to run.")};
}

TEST(MetaFeatureCacheTest, ContentHashIgnoresNameButSeesData) {
  Dataset a = MakeMixedDataset();
  Dataset b = MakeMixedDataset();
  b.set_name("a_different_name");
  EXPECT_EQ(DatasetContentHash(a), DatasetContentHash(b));

  // Any cell change changes the hash.
  Dataset c = MakeMixedDataset();
  c.mutable_feature(0).values[0] += 1.0;
  EXPECT_NE(DatasetContentHash(a), DatasetContentHash(c));
}

TEST(MetaFeatureCacheTest, RepeatedExtractionHitsTheCache) {
  MetricsRegistry registry;
  MetaFeatureCache cache(/*capacity=*/8, &registry);
  const Dataset d = MakeMixedDataset();

  auto first = cache.MetaFeatures(d);
  ASSERT_TRUE(first.ok());
  CacheStats stats = StatsOf(&registry);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);

  auto second = cache.MetaFeatures(d);
  ASSERT_TRUE(second.ok());
  stats = StatsOf(&registry);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  for (size_t i = 0; i < kNumMetaFeatures; ++i) {
    EXPECT_DOUBLE_EQ((*first)[i], (*second)[i]);
  }
  // The cached result matches a direct extraction exactly.
  auto direct = ExtractMetaFeatures(d);
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < kNumMetaFeatures; ++i) {
    EXPECT_DOUBLE_EQ((*second)[i], (*direct)[i]);
  }
}

TEST(MetaFeatureCacheTest, LandmarksKeyedByDatasetAndSeed) {
  MetricsRegistry registry;
  MetaFeatureCache cache(/*capacity=*/8, &registry);
  const Dataset d = MakeMixedDataset();

  ASSERT_TRUE(cache.Landmarks(d, /*seed=*/1).ok());
  ASSERT_TRUE(cache.Landmarks(d, /*seed=*/1).ok());  // Hit.
  ASSERT_TRUE(cache.Landmarks(d, /*seed=*/2).ok());  // Different seed: miss.
  const CacheStats stats = StatsOf(&registry);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(MetaFeatureCacheTest, BoundedLruEvictsLeastRecentlyUsed) {
  MetricsRegistry registry;
  MetaFeatureCache cache(/*capacity=*/2, &registry);
  auto make = [](int seed) {
    SyntheticSpec spec;
    spec.num_instances = 60;
    spec.seed = 100 + seed;
    return GenerateSynthetic(spec);
  };
  const Dataset d0 = make(0), d1 = make(1), d2 = make(2);

  ASSERT_TRUE(cache.MetaFeatures(d0).ok());  // miss {d0}
  ASSERT_TRUE(cache.MetaFeatures(d1).ok());  // miss {d1,d0}
  ASSERT_TRUE(cache.MetaFeatures(d0).ok());  // hit  {d0,d1}
  ASSERT_TRUE(cache.MetaFeatures(d2).ok());  // miss, evicts d1 {d2,d0}
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.MetaFeatures(d1).ok());  // miss again (was evicted)
  ASSERT_TRUE(cache.MetaFeatures(d2).ok());  // hit (still resident)
  const CacheStats stats = StatsOf(&registry);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
}

TEST(MetaFeatureCacheTest, ExtractionErrorsAreNotCached) {
  MetricsRegistry registry;
  MetaFeatureCache cache(/*capacity=*/4, &registry);
  const Dataset empty;  // No rows/features: extraction fails.
  EXPECT_FALSE(cache.MetaFeatures(empty).ok());
  EXPECT_FALSE(cache.MetaFeatures(empty).ok());
  EXPECT_EQ(cache.size(), 0u);
  const CacheStats stats = StatsOf(&registry);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

}  // namespace
}  // namespace smartml
