// Tests for the feature-selection phase.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/core/smartml.h"
#include "src/data/synthetic.h"
#include "src/preprocess/feature_selection.h"

namespace smartml {
namespace {

// Dataset with one strong feature, one weaker copy of it, one constant, and
// one pure-noise column.
Dataset MakeLabeled() {
  Rng rng(5);
  const size_t n = 200;
  Dataset d("fs");
  std::vector<int> labels(n);
  for (size_t r = 0; r < n; ++r) labels[r] = static_cast<int>(r % 2);
  std::vector<double> strong(n), copy(n), constant(n, 7.5), noise(n);
  for (size_t r = 0; r < n; ++r) {
    strong[r] = 4.0 * labels[r] + rng.Normal();
    copy[r] = strong[r] * 2.0 + rng.Normal() * 0.01;  // ~Perfect correlate.
    noise[r] = rng.Normal();
  }
  d.AddNumericFeature("strong", std::move(strong));
  d.AddNumericFeature("copy", std::move(copy));
  d.AddNumericFeature("constant", std::move(constant));
  d.AddNumericFeature("noise", std::move(noise));
  d.SetLabels(labels, {"a", "b"});
  return d;
}

TEST(FeatureSelectionTest, KindNamesRoundTrip) {
  for (FeatureSelectorKind kind :
       {FeatureSelectorKind::kNone, FeatureSelectorKind::kVarianceThreshold,
        FeatureSelectorKind::kCorrelationFilter,
        FeatureSelectorKind::kInformationGain}) {
    auto parsed = ParseFeatureSelectorKind(FeatureSelectorKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseFeatureSelectorKind("magic").ok());
}

TEST(FeatureSelectionTest, NoneKeepsEverything) {
  const Dataset d = MakeLabeled();
  FeatureSelector selector;
  auto out = selector.FitTransform(d);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFeatures(), 4u);
}

TEST(FeatureSelectionTest, VarianceDropsConstant) {
  const Dataset d = MakeLabeled();
  FeatureSelectionOptions options;
  options.kind = FeatureSelectorKind::kVarianceThreshold;
  FeatureSelector selector(options);
  auto out = selector.FitTransform(d);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFeatures(), 3u);
  for (const auto& name : selector.selected()) {
    EXPECT_NE(name, "constant");
  }
}

TEST(FeatureSelectionTest, CorrelationDropsNearDuplicate) {
  const Dataset d = MakeLabeled();
  FeatureSelectionOptions options;
  options.kind = FeatureSelectorKind::kCorrelationFilter;
  options.max_abs_correlation = 0.95;
  FeatureSelector selector(options);
  auto out = selector.FitTransform(d);
  ASSERT_TRUE(out.ok());
  const auto& kept = selector.selected();
  // "strong" survives (first in order), its near-copy is dropped.
  EXPECT_NE(std::find(kept.begin(), kept.end(), "strong"), kept.end());
  EXPECT_EQ(std::find(kept.begin(), kept.end(), "copy"), kept.end());
  EXPECT_NE(std::find(kept.begin(), kept.end(), "noise"), kept.end());
}

TEST(FeatureSelectionTest, InformationGainRanksSignalFirst) {
  const Dataset d = MakeLabeled();
  const std::vector<double> gains = InformationGains(d);
  ASSERT_EQ(gains.size(), 4u);
  EXPECT_GT(gains[0], gains[3] + 0.1);  // strong >> noise.
  EXPECT_NEAR(gains[2], 0.0, 1e-9);     // constant: no gain.
}

TEST(FeatureSelectionTest, TopKKeepsExactlyK) {
  const Dataset d = MakeLabeled();
  FeatureSelectionOptions options;
  options.kind = FeatureSelectorKind::kInformationGain;
  options.top_k = 2;
  FeatureSelector selector(options);
  auto out = selector.FitTransform(d);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFeatures(), 2u);
  // The two signal-bearing columns win.
  const auto& kept = selector.selected();
  EXPECT_NE(std::find(kept.begin(), kept.end(), "strong"), kept.end());
  EXPECT_NE(std::find(kept.begin(), kept.end(), "copy"), kept.end());
}

TEST(FeatureSelectionTest, InfoGainDropsZeroGainFeatures) {
  const Dataset d = MakeLabeled();
  FeatureSelectionOptions options;
  options.kind = FeatureSelectorKind::kInformationGain;
  options.top_k = 0;  // Keep all with positive gain.
  FeatureSelector selector(options);
  auto out = selector.FitTransform(d);
  ASSERT_TRUE(out.ok());
  const auto& kept = selector.selected();
  EXPECT_EQ(std::find(kept.begin(), kept.end(), "constant"), kept.end());
}

TEST(FeatureSelectionTest, IncludeListRestrictsFirst) {
  const Dataset d = MakeLabeled();
  FeatureSelectionOptions options;
  options.include_features = {"strong", "noise"};
  FeatureSelector selector(options);
  auto out = selector.FitTransform(d);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFeatures(), 2u);
}

TEST(FeatureSelectionTest, UnknownIncludeNameRejected) {
  const Dataset d = MakeLabeled();
  FeatureSelectionOptions options;
  options.include_features = {"does_not_exist"};
  FeatureSelector selector(options);
  EXPECT_FALSE(selector.Fit(d).ok());
}

TEST(FeatureSelectionTest, NeverDropsEverything) {
  Dataset d("allconst");
  d.AddNumericFeature("c1", {1, 1, 1, 1});
  d.AddNumericFeature("c2", {2, 2, 2, 2});
  d.SetLabels({0, 1, 0, 1}, {"a", "b"});
  FeatureSelectionOptions options;
  options.kind = FeatureSelectorKind::kVarianceThreshold;
  FeatureSelector selector(options);
  auto out = selector.FitTransform(d);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->NumFeatures(), 1u);
}

TEST(FeatureSelectionTest, TransformRequiresFit) {
  FeatureSelector selector;
  EXPECT_FALSE(selector.Transform(MakeLabeled()).ok());
}

TEST(FeatureSelectionTest, SchemaMismatchRejected) {
  FeatureSelector selector;
  ASSERT_TRUE(selector.Fit(MakeLabeled()).ok());
  Dataset other;
  other.AddNumericFeature("x", {1, 2});
  other.SetLabels({0, 1}, {"a", "b"});
  EXPECT_FALSE(selector.Transform(other).ok());
}

TEST(FeatureSelectionTest, CategoricalHandledByInfoGain) {
  Dataset d("cat");
  const size_t n = 120;
  std::vector<int> labels(n);
  std::vector<double> informative(n), random_cat(n);
  Rng rng(11);
  for (size_t r = 0; r < n; ++r) {
    labels[r] = static_cast<int>(r % 3);
    informative[r] = static_cast<double>(labels[r]);  // Perfect predictor.
    random_cat[r] = static_cast<double>(rng.UniformInt(3));
  }
  d.AddCategoricalFeature("inf_cat", informative, {"a", "b", "c"});
  d.AddCategoricalFeature("rand_cat", random_cat, {"a", "b", "c"});
  d.SetLabels(labels, {"x", "y", "z"});
  const std::vector<double> gains = InformationGains(d);
  EXPECT_GT(gains[0], 1.0);  // ~log2(3) bits.
  EXPECT_LT(gains[1], 0.2);
}

TEST(FeatureSelectionTest, EndToEndThroughSmartML) {
  SyntheticSpec spec;
  spec.num_instances = 150;
  spec.num_informative = 3;
  spec.num_noise = 5;
  spec.class_sep = 2.5;
  spec.seed = 77;
  SmartMlOptions options;
  options.max_evaluations = 9;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn", "rpart"};
  options.feature_selection.kind = FeatureSelectorKind::kInformationGain;
  options.feature_selection.top_k = 3;
  SmartML framework(options);
  auto result = framework.Run(GenerateSynthetic(spec));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->selected_features.size(), 3u);
  EXPECT_GT(result->best_validation_accuracy, 0.7);
}

}  // namespace
}  // namespace smartml
