// Tests for the CSV and ARFF readers/writers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/data/arff.h"
#include "src/data/csv.h"

namespace smartml {
namespace {

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, BasicParseWithHeader) {
  const std::string text =
      "a,b,label\n"
      "1.5,x,yes\n"
      "2.5,y,no\n";
  auto d = ReadCsvString(text);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->NumRows(), 2u);
  EXPECT_EQ(d->NumFeatures(), 2u);
  EXPECT_EQ(d->NumClasses(), 2u);
  EXPECT_FALSE(d->feature(0).is_categorical());
  EXPECT_TRUE(d->feature(1).is_categorical());
  EXPECT_DOUBLE_EQ(d->feature(0).values[1], 2.5);
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvOptions options;
  options.has_header = false;
  auto d = ReadCsvString("1,2,a\n3,4,b\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->feature(0).name, "f0");
  EXPECT_EQ(d->NumClasses(), 2u);
}

TEST(CsvTest, NamedTargetColumn) {
  CsvOptions options;
  options.target_column = "y";
  auto d = ReadCsvString("y,x\npos,1\nneg,2\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumFeatures(), 1u);
  EXPECT_EQ(d->feature(0).name, "x");
  EXPECT_EQ(d->class_names()[0], "pos");
}

TEST(CsvTest, TargetIndex) {
  CsvOptions options;
  options.target_index = 0;
  auto d = ReadCsvString("y,x\na,1\nb,2\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->feature(0).name, "x");
}

TEST(CsvTest, MissingTokensBecomeNaN) {
  auto d = ReadCsvString("a,b,label\n?,x,yes\nNA,y,no\n1.0,,yes\n");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(std::isnan(d->feature(0).values[0]));
  EXPECT_TRUE(std::isnan(d->feature(0).values[1]));
  EXPECT_TRUE(std::isnan(d->feature(1).values[2]));
  EXPECT_EQ(d->CountMissing(), 3u);
}

TEST(CsvTest, RaggedRowRejected) {
  EXPECT_FALSE(ReadCsvString("a,b,label\n1,2\n").ok());
}

TEST(CsvTest, MissingTargetRejected) {
  EXPECT_FALSE(ReadCsvString("a,label\n1,?\n").ok());
}

TEST(CsvTest, UnknownTargetColumnRejected) {
  CsvOptions options;
  options.target_column = "nope";
  EXPECT_FALSE(ReadCsvString("a,b\n1,2\n", options).ok());
}

TEST(CsvTest, EmptyInputRejected) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n").ok());
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  auto d = ReadCsvString("name,label\n\"a,b\",x\nplain,y\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->feature(0).categories[0], "a,b");
}

TEST(CsvTest, RoundTrip) {
  Dataset d("rt");
  d.AddNumericFeature("x", {1.25, -3.5});
  d.AddCategoricalFeature("c", {0, 1}, {"u", "v"});
  d.SetLabels({1, 0}, {"n", "p"});
  const std::string text = WriteCsvString(d);
  auto back = ReadCsvString(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumRows(), 2u);
  EXPECT_EQ(back->NumFeatures(), 2u);
  EXPECT_DOUBLE_EQ(back->feature(0).values[0], 1.25);
  EXPECT_EQ(back->feature(1).categories[1], "v");
  // Labels: first appearance order in the written file is p, n... row0=p.
  EXPECT_EQ(back->class_names()[static_cast<size_t>(back->label(0))], "p");
}

TEST(CsvTest, FileRoundTrip) {
  Dataset d("file_rt");
  d.AddNumericFeature("x", {1, 2, 3});
  d.SetLabels({0, 1, 0}, {"a", "b"});
  const std::string path = testing::TempDir() + "/smartml_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(d, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto d = ReadCsvFile("/nonexistent/path.csv");
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// ARFF
// ---------------------------------------------------------------------------

constexpr char kArff[] = R"(% comment line
@relation weather

@attribute temperature numeric
@attribute outlook {sunny, rainy, overcast}
@attribute class {yes, no}

@data
21.5,sunny,yes
18.0,rainy,no
?,overcast,yes
)";

TEST(ArffTest, BasicParse) {
  auto d = ReadArffString(kArff);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->name(), "weather");
  EXPECT_EQ(d->NumRows(), 3u);
  EXPECT_EQ(d->NumFeatures(), 2u);
  EXPECT_EQ(d->NumClasses(), 2u);
  EXPECT_TRUE(std::isnan(d->feature(0).values[2]));
  EXPECT_EQ(d->feature(1).categories[2], "overcast");
  EXPECT_EQ(d->label(1), 1);  // "no" is second declared class.
}

TEST(ArffTest, ClassAttributeByName) {
  const std::string text =
      "@relation r\n"
      "@attribute class {a,b}\n"
      "@attribute other {x,y}\n"
      "@data\n"
      "a,x\nb,y\n";
  auto d = ReadArffString(text);
  ASSERT_TRUE(d.ok());
  // "class" is the target even though "other" is the last nominal.
  EXPECT_EQ(d->NumFeatures(), 1u);
  EXPECT_EQ(d->feature(0).name, "other");
  EXPECT_EQ(d->class_names()[0], "a");
}

TEST(ArffTest, QuotedNamesAndValues) {
  const std::string text =
      "@relation 'my data'\n"
      "@attribute 'the feature' numeric\n"
      "@attribute class {'c one','c two'}\n"
      "@data\n"
      "1.0,'c one'\n2.0,'c two'\n";
  auto d = ReadArffString(text);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->feature(0).name, "the feature");
  EXPECT_EQ(d->class_names()[0], "c one");
}

TEST(ArffTest, UndeclaredNominalValueRejected) {
  const std::string text =
      "@relation r\n@attribute class {a,b}\n@data\nc\n";
  EXPECT_FALSE(ReadArffString(text).ok());
}

TEST(ArffTest, WrongFieldCountRejected) {
  const std::string text =
      "@relation r\n@attribute x numeric\n@attribute class {a}\n@data\n1\n";
  EXPECT_FALSE(ReadArffString(text).ok());
}

TEST(ArffTest, NoNominalAttributeRejected) {
  const std::string text = "@relation r\n@attribute x numeric\n@data\n1\n";
  EXPECT_FALSE(ReadArffString(text).ok());
}

TEST(ArffTest, SparseFormatUnimplemented) {
  const std::string text =
      "@relation r\n@attribute x numeric\n@attribute class {a}\n@data\n"
      "{0 1.0}\n";
  auto d = ReadArffString(text);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kUnimplemented);
}

TEST(ArffTest, CaseInsensitiveKeywords) {
  const std::string text =
      "@RELATION r\n@ATTRIBUTE x NUMERIC\n@ATTRIBUTE class {a,b}\n@DATA\n"
      "1,a\n2,b\n";
  auto d = ReadArffString(text);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->NumRows(), 2u);
}

TEST(CsvTest, MissingValuesRoundTrip) {
  Dataset d("miss_rt");
  d.AddNumericFeature("x", {1.0, std::nan(""), 3.0});
  d.AddCategoricalFeature("c", {0, std::nan(""), 1}, {"u", "v"});
  d.SetLabels({0, 1, 0}, {"a", "b"});
  auto back = ReadCsvString(WriteCsvString(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(std::isnan(back->feature(0).values[1]));
  EXPECT_TRUE(std::isnan(back->feature(1).values[1]));
  EXPECT_EQ(back->CountMissing(), 2u);
}

TEST(ArffTest, MissingValuesRoundTrip) {
  Dataset d("miss_rt");
  d.AddNumericFeature("x", {1.0, std::nan(""), 3.0});
  d.AddCategoricalFeature("c", {0, std::nan(""), 1}, {"u", "v"});
  d.SetLabels({0, 1, 0}, {"a", "b"});
  auto back = ReadArffString(WriteArffString(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(std::isnan(back->feature(0).values[1]));
  EXPECT_TRUE(std::isnan(back->feature(1).values[1]));
}

TEST(ArffTest, CrossFormatConversion) {
  // CSV -> Dataset -> ARFF -> Dataset preserves everything structural.
  auto csv = ReadCsvString("a,b,label\n1.5,x,yes\n2.5,y,no\n3.5,x,yes\n");
  ASSERT_TRUE(csv.ok());
  auto arff = ReadArffString(WriteArffString(*csv));
  ASSERT_TRUE(arff.ok()) << arff.status().ToString();
  EXPECT_EQ(arff->NumRows(), csv->NumRows());
  EXPECT_EQ(arff->NumFeatures(), csv->NumFeatures());
  EXPECT_EQ(arff->labels(), csv->labels());
  EXPECT_DOUBLE_EQ(arff->feature(0).values[2], 3.5);
}

TEST(ArffTest, RoundTrip) {
  Dataset d("round");
  d.AddNumericFeature("x", {1.5, 2.5});
  d.AddCategoricalFeature("c", {1, 0}, {"u", "v"});
  d.SetLabels({0, 1}, {"n", "p"});
  auto back = ReadArffString(WriteArffString(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumRows(), 2u);
  EXPECT_EQ(back->NumFeatures(), 2u);
  EXPECT_DOUBLE_EQ(back->feature(0).values[1], 2.5);
  EXPECT_EQ(back->class_names()[static_cast<size_t>(back->label(1))], "p");
}

}  // namespace
}  // namespace smartml
