// Tests for the Table 2 preprocessing operators: each operator's
// post-condition is verified, plus pipeline composition and train/transform
// consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/data/synthetic.h"
#include "src/preprocess/preprocess.h"

namespace smartml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MakeNumericDataset() {
  SyntheticSpec spec;
  spec.num_instances = 120;
  spec.num_informative = 4;
  spec.num_classes = 2;
  spec.seed = 21;
  return GenerateSynthetic(spec);
}

double ColumnMean(const FeatureColumn& col) {
  double sum = 0;
  size_t n = 0;
  for (double v : col.values) {
    if (!IsMissing(v)) {
      sum += v;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double ColumnStd(const FeatureColumn& col) {
  const double mean = ColumnMean(col);
  double acc = 0;
  size_t n = 0;
  for (double v : col.values) {
    if (!IsMissing(v)) {
      acc += (v - mean) * (v - mean);
      ++n;
    }
  }
  return n > 1 ? std::sqrt(acc / (n - 1)) : 0.0;
}

TEST(PreprocessTest, NamesRoundTrip) {
  for (PreprocessOp op : AllPreprocessOps()) {
    auto parsed = ParsePreprocessOp(PreprocessOpName(op));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(ParsePreprocessOp("bogus").ok());
  EXPECT_EQ(AllPreprocessOps().size(), 8u)
      << "Table 2 lists exactly 8 operators";
}

TEST(PreprocessTest, CenterZeroesMeans) {
  const Dataset d = MakeNumericDataset();
  auto p = CreatePreprocessor(PreprocessOp::kCenter);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  for (const auto& col : out->features()) {
    if (!col.is_categorical()) {
      EXPECT_NEAR(ColumnMean(col), 0.0, 1e-9);
    }
  }
}

TEST(PreprocessTest, ScaleUnitStddev) {
  const Dataset d = MakeNumericDataset();
  auto p = CreatePreprocessor(PreprocessOp::kScale);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  for (const auto& col : out->features()) {
    if (!col.is_categorical()) {
      EXPECT_NEAR(ColumnStd(col), 1.0, 1e-9);
    }
  }
}

TEST(PreprocessTest, RangeMapsToUnitInterval) {
  const Dataset d = MakeNumericDataset();
  auto p = CreatePreprocessor(PreprocessOp::kRange);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  for (const auto& col : out->features()) {
    if (col.is_categorical()) continue;
    double lo = 1e9, hi = -1e9;
    for (double v : col.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_NEAR(lo, 0.0, 1e-9);
    EXPECT_NEAR(hi, 1.0, 1e-9);
  }
}

TEST(PreprocessTest, ZeroVarianceDropsConstantColumns) {
  Dataset d("zv");
  d.AddNumericFeature("constant", {5, 5, 5, 5});
  d.AddNumericFeature("varies", {1, 2, 3, 4});
  d.AddCategoricalFeature("const_cat", {0, 0, 0, 0}, {"a", "b"});
  d.SetLabels({0, 1, 0, 1}, {"n", "p"});
  auto p = CreatePreprocessor(PreprocessOp::kZeroVariance);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumFeatures(), 1u);
  EXPECT_EQ(out->feature(0).name, "varies");
}

TEST(PreprocessTest, BoxCoxReducesSkewOfLognormal) {
  // Log-normal data is heavily right-skewed; Box-Cox should produce a much
  // more symmetric column (lambda near 0 = log).
  Dataset d("bc");
  std::vector<double> values;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) values.push_back(std::exp(rng.Normal()));
  d.AddNumericFeature("x", values);
  d.SetLabels(std::vector<int>(300, 0), {"y"});

  auto skew = [](const std::vector<double>& v) {
    double mean = 0;
    for (double x : v) mean += x;
    mean /= v.size();
    double m2 = 0, m3 = 0;
    for (double x : v) {
      m2 += (x - mean) * (x - mean);
      m3 += (x - mean) * (x - mean) * (x - mean);
    }
    m2 /= v.size();
    m3 /= v.size();
    return m3 / std::pow(m2, 1.5);
  };
  const double skew_before = skew(values);

  auto p = CreatePreprocessor(PreprocessOp::kBoxCox);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  const double skew_after = skew(out->feature(0).values);
  EXPECT_LT(std::fabs(skew_after), 0.5 * std::fabs(skew_before));
}

TEST(PreprocessTest, BoxCoxSkipsNonPositiveColumns) {
  Dataset d("bc2");
  d.AddNumericFeature("x", {-1, 0, 1, 2});
  d.SetLabels({0, 0, 0, 0}, {"y"});
  auto p = CreatePreprocessor(PreprocessOp::kBoxCox);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->feature(0).values, d.feature(0).values);  // Untouched.
}

TEST(PreprocessTest, YeoJohnsonHandlesNegatives) {
  Dataset d("yj");
  std::vector<double> values;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    values.push_back(std::exp(rng.Normal()) - 1.5);  // Mixed signs, skewed.
  }
  d.AddNumericFeature("x", values);
  d.SetLabels(std::vector<int>(200, 0), {"y"});
  auto p = CreatePreprocessor(PreprocessOp::kYeoJohnson);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  for (double v : out->feature(0).values) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(PreprocessTest, PcaComponentsAreDecorrelated) {
  const Dataset d = MakeNumericDataset();
  auto p = CreatePreprocessor(PreprocessOp::kPca);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(out->NumNumericFeatures(), 1u);
  // Pairwise correlations of PCs ~ 0.
  const size_t k = out->NumNumericFeatures();
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      const auto& va = out->feature(a).values;
      const auto& vb = out->feature(b).values;
      double ma = 0, mb = 0;
      for (size_t r = 0; r < va.size(); ++r) {
        ma += va[r];
        mb += vb[r];
      }
      ma /= va.size();
      mb /= vb.size();
      double cov = 0, vara = 0, varb = 0;
      for (size_t r = 0; r < va.size(); ++r) {
        cov += (va[r] - ma) * (vb[r] - mb);
        vara += (va[r] - ma) * (va[r] - ma);
        varb += (vb[r] - mb) * (vb[r] - mb);
      }
      const double corr = cov / std::sqrt(vara * varb + 1e-12);
      EXPECT_NEAR(corr, 0.0, 0.05) << a << "," << b;
    }
  }
}

TEST(PreprocessTest, PcaKeepsCategoricalColumns) {
  Dataset d("pcacat");
  Rng rng(9);
  std::vector<double> a(50), b(50), c(50);
  for (size_t i = 0; i < 50; ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
    c[i] = static_cast<double>(i % 2);
  }
  d.AddNumericFeature("a", a);
  d.AddNumericFeature("b", b);
  d.AddCategoricalFeature("c", c, {"u", "v"});
  d.SetLabels(std::vector<int>(50, 0), {"y"});
  auto p = CreatePreprocessor(PreprocessOp::kPca);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumCategoricalFeatures(), 1u);
}

TEST(PreprocessTest, IcaProducesFiniteComponents) {
  const Dataset d = MakeNumericDataset();
  auto p = CreatePreprocessor(PreprocessOp::kIca, 11);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(out->NumNumericFeatures(), 1u);
  for (const auto& col : out->features()) {
    for (double v : col.values) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(PreprocessTest, IcaUnmixesLinearMixture) {
  // Two independent uniform sources mixed linearly: ICA components should be
  // much closer to independent (low |corr| with each other + heavy
  // non-Gaussianity preserved). We check decorrelation as a proxy.
  Rng rng(13);
  const size_t n = 400;
  std::vector<double> s1(n), s2(n), x1(n), x2(n);
  for (size_t i = 0; i < n; ++i) {
    s1[i] = rng.Uniform(-1, 1);
    s2[i] = rng.Uniform(-1, 1);
    x1[i] = 2 * s1[i] + 1 * s2[i];
    x2[i] = 1 * s1[i] + 1 * s2[i];
  }
  Dataset d("ica");
  d.AddNumericFeature("x1", x1);
  d.AddNumericFeature("x2", x2);
  d.SetLabels(std::vector<int>(n, 0), {"y"});
  auto p = CreatePreprocessor(PreprocessOp::kIca, 17);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumNumericFeatures(), 2u);
  const auto& c1 = out->feature(0).values;
  const auto& c2 = out->feature(1).values;
  double m1 = 0, m2 = 0;
  for (size_t i = 0; i < n; ++i) {
    m1 += c1[i];
    m2 += c2[i];
  }
  m1 /= n;
  m2 /= n;
  double cov = 0, v1 = 0, v2 = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (c1[i] - m1) * (c2[i] - m2);
    v1 += (c1[i] - m1) * (c1[i] - m1);
    v2 += (c2[i] - m2) * (c2[i] - m2);
  }
  EXPECT_NEAR(cov / std::sqrt(v1 * v2), 0.0, 0.1);
}

TEST(PreprocessTest, ImputeFillsEverything) {
  Dataset d("imp");
  d.AddNumericFeature("x", {1, kNaN, 3, kNaN, 100});
  d.AddCategoricalFeature("c", {0, 1, kNaN, 1, 1}, {"a", "b"});
  d.SetLabels({0, 0, 0, 0, 0}, {"y"});
  auto p = CreatePreprocessor(PreprocessOp::kImpute);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->HasMissing());
  EXPECT_DOUBLE_EQ(out->feature(0).values[1], 3.0);  // Median of {1,3,100}.
  EXPECT_DOUBLE_EQ(out->feature(1).values[2], 1.0);  // Mode "b".
}

TEST(PreprocessTest, PipelineComposesInOrder) {
  const Dataset d = MakeNumericDataset();
  PreprocessPipeline pipeline(
      {PreprocessOp::kCenter, PreprocessOp::kScale});
  auto out = pipeline.FitTransform(d);
  ASSERT_TRUE(out.ok());
  for (const auto& col : out->features()) {
    if (col.is_categorical()) continue;
    EXPECT_NEAR(ColumnMean(col), 0.0, 1e-6);
    EXPECT_NEAR(ColumnStd(col), 1.0, 1e-6);
  }
}

TEST(PreprocessTest, PipelineTransformUsesTrainStatistics) {
  // Transforming a different dataset must reuse training statistics, not
  // refit: a constant shift of the data shows up as a shifted mean.
  const Dataset train = MakeNumericDataset();
  Dataset shifted = train;
  for (double& v : shifted.mutable_feature(0).values) v += 100.0;

  PreprocessPipeline pipeline({PreprocessOp::kCenter});
  ASSERT_TRUE(pipeline.Fit(train).ok());
  auto out = pipeline.Transform(shifted);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(ColumnMean(out->feature(0)), 100.0, 1e-6);
}

TEST(PreprocessTest, UnfittedPipelineRejectsTransform) {
  PreprocessPipeline pipeline({PreprocessOp::kCenter});
  EXPECT_FALSE(pipeline.Transform(MakeNumericDataset()).ok());
}

TEST(PreprocessTest, SchemaMismatchRejected) {
  const Dataset d = MakeNumericDataset();
  auto p = CreatePreprocessor(PreprocessOp::kCenter);
  ASSERT_TRUE(p->Fit(d).ok());
  Dataset other("other");
  other.AddNumericFeature("x", {1, 2});
  other.SetLabels({0, 0}, {"y"});
  EXPECT_FALSE(p->Transform(other).ok());
}

}  // namespace
}  // namespace smartml
