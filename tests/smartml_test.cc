// End-to-end tests of the SmartML orchestrator: the full Figure 1 pipeline,
// knowledge-base growth, warm starts, selection-only mode, and reporting.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/stopwatch.h"
#include "src/core/smartml.h"
#include "src/data/synthetic.h"

namespace smartml {
namespace {

Dataset MakeData(uint64_t seed = 91, size_t n = 120, size_t classes = 2) {
  SyntheticSpec spec;
  spec.num_instances = n;
  spec.num_informative = 4;
  spec.num_classes = classes;
  spec.class_sep = 2.5;
  spec.seed = seed;
  spec.name = "test_" + std::to_string(seed);
  return GenerateSynthetic(spec);
}

SmartMlOptions FastOptions() {
  SmartMlOptions options;
  options.max_evaluations = 18;    // Deterministic, tiny budget.
  options.time_budget_seconds = 60;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn", "naive_bayes", "rpart"};
  options.seed = 11;
  return options;
}

TEST(SmartMlTest, ColdStartEndToEnd) {
  SmartML framework(FastOptions());
  auto result = framework.Run(MakeData());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->used_meta_learning);
  EXPECT_EQ(result->per_algorithm.size(), 3u);
  EXPECT_FALSE(result->best_algorithm.empty());
  EXPECT_GT(result->best_validation_accuracy, 0.6);
  ASSERT_NE(result->best_model, nullptr);
}

TEST(SmartMlTest, KbGrowsAfterRun) {
  SmartML framework(FastOptions());
  EXPECT_EQ(framework.kb().NumRecords(), 0u);
  ASSERT_TRUE(framework.Run(MakeData(91)).ok());
  EXPECT_EQ(framework.kb().NumRecords(), 1u);
  ASSERT_TRUE(framework.Run(MakeData(92)).ok());
  EXPECT_EQ(framework.kb().NumRecords(), 2u);
}

TEST(SmartMlTest, SecondRunUsesMetaLearning) {
  SmartML framework(FastOptions());
  ASSERT_TRUE(framework.Run(MakeData(93)).ok());
  auto second = framework.Run(MakeData(94));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->used_meta_learning);
  EXPECT_FALSE(second->nominations.empty());
  // Nominated algorithms carry warm-start configurations.
  EXPECT_FALSE(second->nominations[0].warm_start_configs.empty());
}

TEST(SmartMlTest, UpdateKbCanBeDisabled) {
  SmartMlOptions options = FastOptions();
  options.update_kb = false;
  SmartML framework(options);
  ASSERT_TRUE(framework.Run(MakeData(95)).ok());
  EXPECT_EQ(framework.kb().NumRecords(), 0u);
}

TEST(SmartMlTest, SelectionOnlyModeSkipsTuning) {
  SmartMlOptions options = FastOptions();
  options.selection_only = true;
  SmartML framework(options);
  auto result = framework.Run(MakeData(96));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->per_algorithm.empty());
  EXPECT_EQ(result->best_model, nullptr);
}

TEST(SmartMlTest, SelectAlgorithmsFromMetaFeaturesOnly) {
  SmartML framework(FastOptions());
  ASSERT_TRUE(framework.Run(MakeData(97)).ok());
  auto mf = ExtractMetaFeatures(MakeData(98));
  ASSERT_TRUE(mf.ok());
  const auto nominations = framework.SelectAlgorithms(*mf);
  EXPECT_FALSE(nominations.empty());
}

TEST(SmartMlTest, EnsembleBuiltWhenEnabled) {
  SmartMlOptions options = FastOptions();
  options.enable_ensembling = true;
  SmartML framework(options);
  auto result = framework.Run(MakeData(99));
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->ensemble, nullptr);
  EXPECT_GE(result->ensemble->NumMembers(), 2u);
  EXPECT_GT(result->ensemble_validation_accuracy, 0.5);
}

TEST(SmartMlTest, EnsembleDisabled) {
  SmartMlOptions options = FastOptions();
  options.enable_ensembling = false;
  SmartML framework(options);
  auto result = framework.Run(MakeData(100));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ensemble, nullptr);
}

TEST(SmartMlTest, InterpretabilityProducesImportances) {
  SmartMlOptions options = FastOptions();
  options.enable_interpretability = true;
  SmartML framework(options);
  auto result = framework.Run(MakeData(101));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->importances.empty());
}

TEST(SmartMlTest, PreprocessingOpsApplied) {
  SmartMlOptions options = FastOptions();
  options.preprocessing = {PreprocessOp::kCenter, PreprocessOp::kScale};
  SmartML framework(options);
  auto result = framework.Run(MakeData(102));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->best_validation_accuracy, 0.6);
}

TEST(SmartMlTest, MissingDataAutoImputed) {
  SyntheticSpec spec;
  spec.num_instances = 120;
  spec.num_informative = 4;
  spec.num_classes = 2;
  spec.class_sep = 2.5;
  spec.missing_fraction = 0.05;
  spec.seed = 103;
  spec.name = "missing";
  SmartML framework(FastOptions());
  auto result = framework.Run(GenerateSynthetic(spec));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->best_validation_accuracy, 0.5);
}

TEST(SmartMlTest, RejectsDegenerateInputs) {
  SmartML framework(FastOptions());
  Dataset tiny;
  tiny.AddNumericFeature("x", {1, 2});
  tiny.SetLabels({0, 1}, {"a", "b"});
  EXPECT_FALSE(framework.Run(tiny).ok());

  Dataset one_class = MakeData(104);
  std::vector<int> labels(one_class.NumRows(), 0);
  one_class.SetLabels(labels, {"only"});
  EXPECT_FALSE(framework.Run(one_class).ok());
}

TEST(SmartMlTest, KbPersistenceRoundTrip) {
  const std::string path = testing::TempDir() + "/smartml_e2e_kb.txt";
  {
    SmartML framework(FastOptions());
    ASSERT_TRUE(framework.Run(MakeData(105)).ok());
    ASSERT_TRUE(framework.SaveKnowledgeBase(path).ok());
  }
  {
    SmartML framework(FastOptions());
    ASSERT_TRUE(framework.LoadKnowledgeBase(path).ok());
    EXPECT_EQ(framework.kb().NumRecords(), 1u);
    // Meta-learning immediately active thanks to the loaded KB.
    auto result = framework.Run(MakeData(106));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->used_meta_learning);
  }
  std::remove(path.c_str());
}

TEST(SmartMlTest, BootstrapSeedsKb) {
  SmartML framework(FastOptions());
  ASSERT_TRUE(framework
                  .BootstrapWithDataset(MakeData(107), {"knn", "rpart"},
                                        /*evaluations_per_algorithm=*/4)
                  .ok());
  EXPECT_EQ(framework.kb().NumRecords(), 1u);
  const std::vector<KbRecord> records = framework.kb().SnapshotRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].results.size(), 2u);
}

TEST(SmartMlTest, ReportMentionsKeyFacts) {
  SmartML framework(FastOptions());
  auto result = framework.Run(MakeData(108));
  ASSERT_TRUE(result.ok());
  const std::string report = result->Report();
  EXPECT_NE(report.find("SmartML experiment output"), std::string::npos);
  EXPECT_NE(report.find("best algorithm"), std::string::npos);
  EXPECT_NE(report.find(result->best_algorithm), std::string::npos);
  EXPECT_NE(report.find("validation accuracy"), std::string::npos);
}

TEST(SmartMlTest, BudgetDividedByParamCounts) {
  // With max_evaluations set, algorithms with more hyperparameters receive
  // more fold-evaluations. svm (5 params) vs knn (1 param).
  SmartMlOptions options = FastOptions();
  options.cold_start_algorithms = {"svm", "knn"};
  options.max_evaluations = 30;
  SmartML framework(options);
  auto result = framework.Run(MakeData(109));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_algorithm.size(), 2u);
  const auto& svm_run = result->per_algorithm[0].algorithm == "svm"
                            ? result->per_algorithm[0]
                            : result->per_algorithm[1];
  const auto& knn_run = result->per_algorithm[0].algorithm == "knn"
                            ? result->per_algorithm[0]
                            : result->per_algorithm[1];
  EXPECT_GT(svm_run.evaluations, knn_run.evaluations);
}

TEST(SmartMlTest, HoldoutTuningMode) {
  // cv_folds = 1: SMAC tunes on a single stratified holdout.
  SmartMlOptions options = FastOptions();
  options.cv_folds = 1;
  SmartML framework(options);
  auto result = framework.Run(MakeData(111));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->best_validation_accuracy, 0.6);
}

TEST(SmartMlTest, TimeBudgetOnlyMode) {
  // No evaluation cap: the wall-clock deadline is the only stop signal.
  SmartMlOptions options = FastOptions();
  options.max_evaluations = 0;
  options.time_budget_seconds = 0.5;
  SmartML framework(options);
  Stopwatch watch;
  auto result = framework.Run(MakeData(112));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Tuning respects the (tiny) budget within generous slack: the budget
  // gates new evaluations but an in-flight fit completes.
  EXPECT_LT(watch.ElapsedSeconds(), 30.0);
  EXPECT_GT(result->best_validation_accuracy, 0.5);
}

TEST(SmartMlTest, PhaseTimingsPopulated) {
  SmartML framework(FastOptions());
  auto result = framework.Run(MakeData(113));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->preprocessing_seconds, 0.0);
  EXPECT_GE(result->tuning_seconds, 0.0);
  EXPECT_LE(result->preprocessing_seconds + result->selection_seconds +
                result->tuning_seconds + result->output_seconds,
            result->total_seconds + 0.5);
  EXPECT_NE(result->Report().find("phase times"), std::string::npos);
}

TEST(SmartMlTest, NominationsCappedByOption) {
  SmartMlOptions options = FastOptions();
  options.max_nominations = 2;
  SmartML framework(options);
  ASSERT_TRUE(framework.Run(MakeData(114)).ok());
  auto second = framework.Run(MakeData(115));
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second->nominations.size(), 2u);
}

TEST(SmartMlTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    SmartMlOptions options = FastOptions();
    options.seed = seed;
    SmartML framework(options);
    auto result = framework.Run(MakeData(110));
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->best_validation_accuracy : -1.0;
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
}

}  // namespace
}  // namespace smartml
