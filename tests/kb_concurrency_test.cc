// ThreadSanitizer-friendly stress tests for the KnowledgeBase shared_mutex
// synchronization: concurrent writers (AddRecord, merge-updates) against
// concurrent readers (NumRecords, SnapshotRecords, Nominate, Serialize) and
// copy construction. Run under SMARTML_SANITIZE=thread to prove the
// reader/writer locking is race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/kb/knowledge_base.h"

namespace smartml {
namespace {

KbRecord MakeRecord(const std::string& name, double accuracy) {
  KbRecord record;
  record.dataset_name = name;
  for (size_t i = 0; i < kNumMetaFeatures; ++i) {
    record.meta_features[i] = static_cast<double>(i) + accuracy;
  }
  KbAlgorithmResult result;
  result.algorithm = accuracy > 0.5 ? "rf" : "knn";
  result.accuracy = accuracy;
  record.results.push_back(result);
  return record;
}

TEST(KbConcurrencyTest, ReadersAndWritersDoNotRace) {
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("seed", 0.9));

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kIterations = 150;
  std::atomic<bool> stop{false};
  std::atomic<int> reads_done{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&kb, w] {
      for (int i = 0; i < kIterations; ++i) {
        // Alternate fresh inserts with merges into an existing record.
        const bool merge = i % 3 == 0;
        const std::string name =
            merge ? "seed" : "ds-" + std::to_string(w) + "-" + std::to_string(i);
        kb.AddRecord(MakeRecord(name, (i % 10) / 10.0));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      MetaFeatureVector query{};
      query[0] = 1.0;
      NominationOptions options;
      options.max_algorithms = 3;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t n = kb.NumRecords();
        const auto snapshot = kb.SnapshotRecords();
        EXPECT_GE(snapshot.size(), 1u);
        EXPECT_GE(n, 1u);
        const auto nominations = kb.Nominate(query, options);
        EXPECT_LE(nominations.size(), options.max_algorithms);
        EXPECT_NE(kb.Serialize().find("smartml-kb"), std::string::npos);
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Concurrent copies (used by StatusOr plumbing) must also be safe.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      KnowledgeBase copy = kb;
      EXPECT_GE(copy.NumRecords(), 1u);
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_GT(reads_done.load(), 0);
  // No lost updates: "seed" plus each writer's fresh inserts (i % 3 != 0).
  size_t fresh_per_writer = 0;
  for (int i = 0; i < kIterations; ++i) {
    if (i % 3 != 0) ++fresh_per_writer;
  }
  EXPECT_EQ(kb.NumRecords(), 1u + kWriters * fresh_per_writer);
}

TEST(KbConcurrencyTest, FindAndNearestRecordsDoNotRaceWithAddRecord) {
  // Regression for the pointer-stability bug: Find/NearestRecords used to
  // return pointers into records_, which a concurrent AddRecord push_back
  // could reallocate out from under the reader (use-after-free under TSan/
  // ASan). The copy-returning API must let readers keep using results while
  // writers grow the KB.
  KnowledgeBase kb;
  kb.AddRecord(MakeRecord("stable", 0.9));

  constexpr int kInserts = 300;
  std::atomic<bool> stop{false};
  std::atomic<int> lookups_done{0};

  std::vector<std::thread> threads;
  // One writer forcing many reallocations of the record vector.
  threads.emplace_back([&kb] {
    for (int i = 0; i < kInserts; ++i) {
      kb.AddRecord(MakeRecord("grow-" + std::to_string(i), (i % 10) / 10.0));
    }
  });
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      MetaFeatureVector query{};
      query[0] = 1.0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Hammer the copy-returning lookups and *use* the results after the
        // call returns — exactly what dangled before the fix.
        const std::optional<KbRecord> found = kb.Find("stable");
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(found->dataset_name, "stable");
        EXPECT_FALSE(found->results.empty());

        const auto neighbors = kb.NearestRecords(query, 3);
        for (const auto& neighbor : neighbors) {
          EXPECT_FALSE(neighbor.record.dataset_name.empty());
          EXPECT_GE(neighbor.distance, 0.0);
        }
        lookups_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  threads[0].join();
  // Under heavy machine load the writer can finish before a reader gets
  // through one iteration; hold the readers open until at least one full
  // lookup round completed so the assertion below is meaningful.
  while (lookups_done.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (size_t t = 1; t < threads.size(); ++t) threads[t].join();

  EXPECT_GT(lookups_done.load(), 0);
  EXPECT_EQ(kb.NumRecords(), 1u + kInserts);
}

TEST(KbConcurrencyTest, SerializeIsConsistentUnderWrites) {
  KnowledgeBase kb;
  std::thread writer([&kb] {
    for (int i = 0; i < 100; ++i) {
      kb.AddRecord(MakeRecord("ds-" + std::to_string(i), 0.8));
    }
  });
  // Every serialized snapshot must round-trip, even mid-write.
  for (int i = 0; i < 20; ++i) {
    auto restored = KnowledgeBase::Deserialize(kb.Serialize());
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_LE(restored->NumRecords(), 100u);
  }
  writer.join();
  EXPECT_EQ(kb.NumRecords(), 100u);
}

}  // namespace
}  // namespace smartml
