// Tests for the Auto-Weka-style CASH baseline.
#include <gtest/gtest.h>

#include "src/baselines/autoweka.h"
#include "src/common/rng.h"
#include "src/data/synthetic.h"
#include "src/ml/registry.h"

namespace smartml {
namespace {

Dataset MakeData(uint64_t seed = 81) {
  SyntheticSpec spec;
  spec.num_instances = 120;
  spec.num_informative = 4;
  spec.num_classes = 2;
  spec.class_sep = 2.5;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TEST(CashSpaceTest, RootCategoricalPlusConditionalChildren) {
  auto space = BuildCashSpace({"knn", "svm"});
  ASSERT_TRUE(space.ok());
  const ParamSpec* root = space->Find("algorithm");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->choices.size(), 2u);
  // knn contributes 1 param, svm 5 -> 1 root + 6 children.
  EXPECT_EQ(space->NumParams(), 7u);
  const ParamSpec* k = space->Find("knn:k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->parent, "algorithm");
}

TEST(CashSpaceTest, ChildInactiveWhenOtherAlgorithmSelected) {
  auto space = BuildCashSpace({"knn", "svm"});
  ASSERT_TRUE(space.ok());
  ParamConfig config = space->DefaultConfig();
  config.SetChoice("algorithm", "svm");
  const ParamSpec* k = space->Find("knn:k");
  ASSERT_NE(k, nullptr);
  EXPECT_FALSE(space->IsActive(*k, config));
  config.SetChoice("algorithm", "knn");
  EXPECT_TRUE(space->IsActive(*k, config));
}

TEST(CashSpaceTest, IntraAlgorithmConditionalityPreserved) {
  auto space = BuildCashSpace({"svm"});
  ASSERT_TRUE(space.ok());
  const ParamSpec* degree = space->Find("svm:degree");
  ASSERT_NE(degree, nullptr);
  EXPECT_EQ(degree->parent, "svm:kernel");  // Re-rooted on prefixed parent.
  ParamConfig config = space->DefaultConfig();
  config.SetChoice("svm:kernel", "rbf");
  EXPECT_FALSE(space->IsActive(*degree, config));
  config.SetChoice("svm:kernel", "poly");
  EXPECT_TRUE(space->IsActive(*degree, config));
}

TEST(CashSpaceTest, FullFifteenAlgorithmSpace) {
  auto space = BuildCashSpace(AllAlgorithmNames());
  ASSERT_TRUE(space.ok());
  // 1 root + sum of all Table 3 parameter counts (40).
  size_t expected = 1;
  for (const auto& info : AllAlgorithms()) {
    expected += info.categorical_params + info.numerical_params;
  }
  EXPECT_EQ(space->NumParams(), expected);
}

TEST(CashSpaceTest, EmptyAlgorithmListRejected) {
  EXPECT_FALSE(BuildCashSpace({}).ok());
}

TEST(CashDecodeTest, RoundTrip) {
  auto space = BuildCashSpace({"knn", "svm"});
  ASSERT_TRUE(space.ok());
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const ParamConfig joint = space->Sample(&rng);
    auto decoded = DecodeCashConfig(joint);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded->first == "knn" || decoded->first == "svm");
    if (decoded->first == "knn") {
      EXPECT_TRUE(decoded->second.Has("k"));
      EXPECT_FALSE(decoded->second.Has("C"));
    } else {
      EXPECT_TRUE(decoded->second.Has("C"));
    }
  }
}

TEST(CashDecodeTest, MissingAlgorithmKeyRejected) {
  ParamConfig config;
  config.SetDouble("x", 1.0);
  EXPECT_FALSE(DecodeCashConfig(config).ok());
}

TEST(AutoWekaTest, EndToEndSmacFindsGoodModel) {
  CashOptions options;
  options.max_evaluations = 24;
  options.cv_folds = 2;
  options.seed = 3;
  options.algorithms = {"knn", "naive_bayes", "rpart"};
  auto result = RunAutoWekaBaseline(MakeData(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKnownAlgorithm(result->best_algorithm));
  EXPECT_GT(result->validation_accuracy, 0.7);
  EXPECT_LE(result->evaluations, 24u);
}

TEST(AutoWekaTest, RandomSearchVariantRuns) {
  CashOptions options;
  options.max_evaluations = 16;
  options.cv_folds = 2;
  options.optimizer = CashOptions::Optimizer::kRandomSearch;
  options.algorithms = {"knn", "naive_bayes"};
  auto result = RunAutoWekaBaseline(MakeData(83), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->validation_accuracy, 0.6);
}

TEST(AutoWekaTest, GeneticVariantRuns) {
  CashOptions options;
  options.max_evaluations = 16;
  options.cv_folds = 2;
  options.optimizer = CashOptions::Optimizer::kGenetic;
  options.algorithms = {"knn", "naive_bayes", "rpart"};
  auto result = RunAutoWekaBaseline(MakeData(87), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKnownAlgorithm(result->best_algorithm));
  EXPECT_GT(result->validation_accuracy, 0.6);
}

TEST(AutoWekaTest, DeterministicForSeed) {
  CashOptions options;
  options.max_evaluations = 12;
  options.cv_folds = 2;
  options.seed = 17;
  options.algorithms = {"knn", "rpart"};
  auto a = RunAutoWekaBaseline(MakeData(85), options);
  auto b = RunAutoWekaBaseline(MakeData(85), options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->best_algorithm, b->best_algorithm);
  EXPECT_DOUBLE_EQ(a->validation_accuracy, b->validation_accuracy);
}

}  // namespace
}  // namespace smartml
