// Tests for NumericEncoder (train-time-fitted numeric encoding) and the
// LogisticModel substrate (LMT's leaf models).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/ml/encoding.h"
#include "src/ml/logistic.h"

namespace smartml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MixedDataset() {
  Dataset d("enc");
  d.AddNumericFeature("x", {1.0, 2.0, kNaN, 4.0});
  d.AddCategoricalFeature("c", {0, 1, 2, kNaN}, {"a", "b", "c"});
  d.SetLabels({0, 1, 0, 1}, {"n", "p"});
  return d;
}

TEST(EncodingTest, WidthIsNumericPlusOneHot) {
  NumericEncoder encoder;
  ASSERT_TRUE(encoder.Fit(MixedDataset(), false).ok());
  EXPECT_EQ(encoder.output_width(), 4u);  // 1 numeric + 3 categories.
}

TEST(EncodingTest, ImputesWithTrainingMean) {
  NumericEncoder encoder;
  const Dataset d = MixedDataset();
  ASSERT_TRUE(encoder.Fit(d, false).ok());
  auto x = encoder.Transform(d);
  ASSERT_TRUE(x.ok());
  // Mean of {1,2,4} = 7/3.
  EXPECT_NEAR((*x)(2, 0), 7.0 / 3.0, 1e-12);
}

TEST(EncodingTest, MissingCategoricalIsAllZeros) {
  NumericEncoder encoder;
  const Dataset d = MixedDataset();
  ASSERT_TRUE(encoder.Fit(d, false).ok());
  auto x = encoder.Transform(d);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)(3, 1), 0.0);
  EXPECT_DOUBLE_EQ((*x)(3, 2), 0.0);
  EXPECT_DOUBLE_EQ((*x)(3, 3), 0.0);
}

TEST(EncodingTest, OneHotPositions) {
  NumericEncoder encoder;
  const Dataset d = MixedDataset();
  ASSERT_TRUE(encoder.Fit(d, false).ok());
  auto x = encoder.Transform(d);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)(0, 1), 1.0);  // "a".
  EXPECT_DOUBLE_EQ((*x)(1, 2), 1.0);  // "b".
  EXPECT_DOUBLE_EQ((*x)(2, 3), 1.0);  // "c".
}

TEST(EncodingTest, StandardizationUsesTrainStats) {
  Rng rng(3);
  Dataset train("t");
  std::vector<double> values(100);
  for (double& v : values) v = 10.0 + 2.0 * rng.Normal();
  train.AddNumericFeature("x", values);
  train.SetLabels(std::vector<int>(100, 0), {"y"});

  NumericEncoder encoder;
  ASSERT_TRUE(encoder.Fit(train, /*standardize=*/true).ok());
  auto x = encoder.Transform(train);
  ASSERT_TRUE(x.ok());
  double mean = 0;
  for (size_t r = 0; r < 100; ++r) mean += (*x)(r, 0);
  mean /= 100;
  EXPECT_NEAR(mean, 0.0, 1e-9);

  // A shifted test set gets shifted z-scores (no refit).
  Dataset test = train;
  for (double& v : test.mutable_feature(0).values) v += 100.0;
  auto xt = encoder.Transform(test);
  ASSERT_TRUE(xt.ok());
  double test_mean = 0;
  for (size_t r = 0; r < 100; ++r) test_mean += (*xt)(r, 0);
  EXPECT_GT(test_mean / 100, 10.0);
}

TEST(EncodingTest, TransformBeforeFitFails) {
  NumericEncoder encoder;
  EXPECT_FALSE(encoder.Transform(MixedDataset()).ok());
}

TEST(EncodingTest, SchemaMismatchFails) {
  NumericEncoder encoder;
  ASSERT_TRUE(encoder.Fit(MixedDataset(), false).ok());
  Dataset other;
  other.AddNumericFeature("only", {1.0});
  other.SetLabels({0}, {"z"});
  EXPECT_FALSE(encoder.Transform(other).ok());
  // Same arity but swapped type also fails.
  Dataset swapped;
  swapped.AddCategoricalFeature("x", {0}, {"u"});
  swapped.AddNumericFeature("c", {1.0});
  swapped.SetLabels({0}, {"z"});
  EXPECT_FALSE(encoder.Transform(swapped).ok());
}

TEST(EncodingTest, EmptyTrainingRejected) {
  NumericEncoder encoder;
  Dataset empty;
  EXPECT_FALSE(encoder.Fit(empty, false).ok());
}

// ---------------------------------------------------------------------------
// LogisticModel
// ---------------------------------------------------------------------------

TEST(LogisticTest, LearnsLinearlySeparableBinary) {
  Rng rng(7);
  const size_t n = 200;
  Matrix x(n, 2);
  std::vector<int> y(n);
  for (size_t r = 0; r < n; ++r) {
    y[r] = static_cast<int>(r % 2);
    x(r, 0) = 3.0 * y[r] + rng.Normal() * 0.5;
    x(r, 1) = rng.Normal();
  }
  LogisticModel model;
  ASSERT_TRUE(model.Fit(x, y, 2, {}, {}).ok());
  size_t correct = 0;
  for (size_t r = 0; r < n; ++r) {
    const auto p = model.PredictProbaRow(x.RowPtr(r));
    if ((p[1] > 0.5 ? 1 : 0) == y[r]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.95);
}

TEST(LogisticTest, MulticlassProbabilitiesSumToOne) {
  Rng rng(9);
  Matrix x(90, 3);
  std::vector<int> y(90);
  for (size_t r = 0; r < 90; ++r) {
    y[r] = static_cast<int>(r % 3);
    for (size_t c = 0; c < 3; ++c) {
      x(r, c) = (c == static_cast<size_t>(y[r]) ? 2.0 : 0.0) + rng.Normal();
    }
  }
  LogisticModel model;
  ASSERT_TRUE(model.Fit(x, y, 3, {}, {}).ok());
  for (size_t r = 0; r < 10; ++r) {
    const auto p = model.PredictProbaRow(x.RowPtr(r));
    double total = 0;
    for (double v : p) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(LogisticTest, SampleWeightsFocusTheFit) {
  // Two populations with contradictory labels; weighting one population to
  // zero makes the model follow the other.
  Matrix x(40, 1);
  std::vector<int> y(40);
  for (size_t r = 0; r < 40; ++r) {
    x(r, 0) = r < 20 ? 1.0 : -1.0;
    y[r] = r < 20 ? 1 : 0;
  }
  std::vector<double> w(40, 0.0);
  for (size_t r = 0; r < 20; ++r) w[r] = 1.0;  // Only the first population.
  LogisticModel model;
  ASSERT_TRUE(model.Fit(x, y, 2, w, {}).ok());
  const double row_pos[1] = {1.0};
  EXPECT_GT(model.PredictProbaRow(row_pos)[1], 0.5);
}

TEST(LogisticTest, L2ShrinksWeightsEffect) {
  Rng rng(11);
  Matrix x(100, 1);
  std::vector<int> y(100);
  for (size_t r = 0; r < 100; ++r) {
    y[r] = static_cast<int>(r % 2);
    x(r, 0) = y[r] == 1 ? 1.0 : -1.0;
  }
  LogisticModel::Options weak, strong;
  weak.l2 = 1e-6;
  strong.l2 = 10.0;
  LogisticModel a, b;
  ASSERT_TRUE(a.Fit(x, y, 2, {}, weak).ok());
  ASSERT_TRUE(b.Fit(x, y, 2, {}, strong).ok());
  const double row[1] = {1.0};
  // Heavier regularization -> probabilities closer to 0.5.
  EXPECT_GT(a.PredictProbaRow(row)[1], b.PredictProbaRow(row)[1]);
  EXPECT_GT(b.PredictProbaRow(row)[1], 0.5);
}

TEST(LogisticTest, RejectsBadInput) {
  LogisticModel model;
  Matrix x(3, 1);
  EXPECT_FALSE(model.Fit(x, {0, 1}, 2, {}, {}).ok());
  EXPECT_FALSE(model.Fit(x, {0, 1, 0}, 2, {0, 0, 0}, {}).ok());
}

}  // namespace
}  // namespace smartml
