// Tests for classification metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/metrics.h"

namespace smartml {
namespace {

TEST(AccuracyTest, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2}, {1, 2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ErrorRate({0, 1}, {0, 0}), 0.5);
}

TEST(AccuracyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(ConfusionTest, CountsLandInRightCells) {
  const Matrix c = ConfusionMatrix({0, 0, 1, 1, 1}, {0, 1, 1, 1, 0}, 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 2.0);
}

TEST(MacroF1Test, PerfectPrediction) {
  EXPECT_NEAR(MacroF1({0, 1, 2, 0}, {0, 1, 2, 0}, 3), 1.0, 1e-12);
}

TEST(MacroF1Test, KnownValue) {
  // Class 0: TP=1 FP=1 FN=1 -> P=0.5 R=0.5 F1=0.5.
  // Class 1: TP=1 FP=1 FN=1 -> F1=0.5.
  const double f1 = MacroF1({0, 0, 1, 1}, {0, 1, 1, 0}, 2);
  EXPECT_NEAR(f1, 0.5, 1e-12);
}

TEST(MacroF1Test, SkipsAbsentClasses) {
  // Class 2 never appears in ground truth; it must not dilute the mean.
  const double f1 = MacroF1({0, 1}, {0, 1}, 3);
  EXPECT_NEAR(f1, 1.0, 1e-12);
}

TEST(KappaTest, PerfectAgreementIsOne) {
  EXPECT_NEAR(CohensKappa({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0, 1e-12);
}

TEST(KappaTest, ChanceAgreementIsZero) {
  // Predictions independent of truth: kappa ~ 0.
  const std::vector<int> actual = {0, 0, 1, 1};
  const std::vector<int> predicted = {0, 1, 0, 1};
  EXPECT_NEAR(CohensKappa(actual, predicted, 2), 0.0, 1e-12);
}

TEST(LogLossTest, ConfidentCorrectIsSmall) {
  const double loss = LogLoss({0}, {{0.99, 0.01}});
  EXPECT_NEAR(loss, -std::log(0.99), 1e-12);
}

TEST(LogLossTest, ClipsExtremeProbabilities) {
  const double loss = LogLoss({0}, {{0.0, 1.0}});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 30.0);
}

TEST(LogLossTest, UniformPrediction) {
  const double loss = LogLoss({0, 1}, {{0.5, 0.5}, {0.5, 0.5}});
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);
}

}  // namespace
}  // namespace smartml
