// Crash-recovery tests: a JobManager pointed at a journal directory must
// survive being torn down and rebuilt — terminal jobs stay pollable,
// never-started jobs re-queue in submission order, cancellations land
// terminal, idempotency keys keep working — and the tuners must resume from
// their checkpoints bit-identically (SMAC) or at least losslessly for the
// incumbent (random search, genetic).
//
// ThreadSanitizer-friendly: one worker at most, and every cross-restart
// assertion waits on JobManager::Wait rather than sleeping.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/api/job_manager.h"
#include "src/common/cancellation.h"
#include "src/data/csv.h"
#include "src/data/synthetic.h"
#include "src/obs/metrics.h"
#include "src/persist/checkpoint.h"
#include "src/persist/journal.h"
#include "src/tuning/genetic.h"
#include "src/tuning/random_search.h"
#include "src/tuning/smac.h"

namespace smartml {
namespace {

// --------------------------------------------------------------------------
// Shared fixtures
// --------------------------------------------------------------------------

std::string JournalDir(const std::string& stem) {
  static int counter = 0;
  return testing::TempDir() + "/" + stem + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter++);
}

Dataset SmallDataset(uint64_t seed = 59) {
  SyntheticSpec spec;
  spec.num_instances = 80;
  spec.class_sep = 2.5;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

JobRequest FastRequest() {
  JobRequest request;
  request.dataset = SmallDataset();
  request.run_options.max_evaluations = 6;
  request.run_options.cv_folds = 2;
  request.run_options.cold_start_algorithms = {"knn"};
  request.run_options.selection_only = true;
  return request;
}

JobManagerOptions Durable(const std::string& dir, int workers) {
  JobManagerOptions options;
  options.num_workers = workers;
  options.journal_dir = dir;
  return options;
}

// A time-boxed tuning run that pins the (single) worker while the test
// submits more jobs: with one worker and FIFO dispatch within a tenant,
// everything submitted after the blocker stays queued until the manager is
// destroyed — which is how this file simulates "crashed with a full queue"
// (the destructor waits for the blocker but leaves queued jobs queued).
JobRequest BlockerRequest(double budget_seconds = 1.5) {
  JobRequest request = FastRequest();
  request.run_options.selection_only = false;
  request.run_options.time_budget_seconds = budget_seconds;
  request.run_options.max_evaluations = 0;
  return request;
}

// The bowl objective from tuning_test: deterministic per (config, fold), so
// checkpoint/resume must reproduce an uninterrupted run exactly.
class BowlObjective : public TuningObjective {
 public:
  explicit BowlObjective(size_t folds = 2) : folds_(folds) {}
  size_t NumFolds() const override { return folds_; }
  StatusOr<double> EvaluateFold(const ParamConfig& config,
                                size_t fold) override {
    const double dx = config.GetDouble("x", 0.0) - 0.3;
    const double dy = config.GetDouble("y", 0.0) - 0.7;
    return dx * dx + dy * dy + 0.001 * static_cast<double>(fold);
  }

 private:
  size_t folds_;
};

// Wraps an objective and flips a CancelToken after `limit` fold
// evaluations, simulating a crash partway through a tuning run.
class CancelAfter : public TuningObjective {
 public:
  CancelAfter(TuningObjective* inner, size_t limit,
              std::shared_ptr<CancelToken> token)
      : inner_(inner), limit_(limit), token_(std::move(token)) {}
  size_t NumFolds() const override { return inner_->NumFolds(); }
  StatusOr<double> EvaluateFold(const ParamConfig& config,
                                size_t fold) override {
    if (count_.fetch_add(1, std::memory_order_relaxed) + 1 >= limit_) {
      token_->Cancel();
    }
    return inner_->EvaluateFold(config, fold);
  }

 private:
  TuningObjective* inner_;
  size_t limit_;
  std::shared_ptr<CancelToken> token_;
  std::atomic<size_t> count_{0};
};

ParamSpace BowlSpace() {
  ParamSpace space;
  space.AddDouble("x", 0.0, 1.0, 0.0);
  space.AddDouble("y", 0.0, 1.0, 0.0);
  return space;
}

// --------------------------------------------------------------------------
// JobManager restart recovery
// --------------------------------------------------------------------------

TEST(RecoveryTest, TerminalJobStaysPollableAfterRestart) {
  const std::string dir = JournalDir("recover_terminal");
  MetricsRegistry registry;
  std::string id;
  JobSnapshot before;
  {
    SmartML framework;
    auto options = Durable(dir, 1);
    options.metrics = &registry;
    JobManager jobs(&framework, options);
    auto submitted = jobs.Submit(FastRequest());
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    id = *submitted;
    auto finished = jobs.Wait(id, 60.0);
    ASSERT_TRUE(finished.ok());
    ASSERT_EQ(finished->state, JobState::kDone);
    before = *finished;
  }
  // A fresh manager on the same directory reconstructs the terminal job
  // from the journal without re-running anything.
  SmartML framework;
  MetricsRegistry registry2;
  auto options = Durable(dir, 1);
  options.metrics = &registry2;
  JobManager restarted(&framework, options);
  auto after = restarted.Get(id);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->state, JobState::kDone);
  EXPECT_TRUE(after->recovered);
  EXPECT_EQ(after->best_algorithm, before.best_algorithm);
  // The journal stores this through %.12g JSON, so allow last-ulp drift.
  EXPECT_NEAR(after->best_validation_accuracy, before.best_validation_accuracy,
              1e-9);
  EXPECT_EQ(after->result_json, before.result_json);
  EXPECT_EQ(after->dataset_name, before.dataset_name);
  // Reconstructed terminal jobs must not be re-executed.
  EXPECT_EQ(restarted.NumQueued(), 0u);
}

TEST(RecoveryTest, QueuedJobsReRunInSubmissionOrderAfterRestart) {
  const std::string dir = JournalDir("recover_queued");
  std::vector<std::string> ids;
  {
    SmartML framework;
    JobManager jobs(&framework, Durable(dir, 1));
    ASSERT_TRUE(jobs.Submit(BlockerRequest()).ok());
    for (int i = 0; i < 3; ++i) {
      auto submitted = jobs.Submit(FastRequest());
      ASSERT_TRUE(submitted.ok());
      ids.push_back(*submitted);
    }
    EXPECT_EQ(jobs.NumQueued(), 3u);
  }
  MetricsRegistry registry;
  SmartML framework;
  auto options = Durable(dir, 1);
  options.metrics = &registry;
  JobManager restarted(&framework, options);
  for (const std::string& id : ids) {
    auto finished = restarted.Wait(id, 60.0);
    ASSERT_TRUE(finished.ok()) << id << ": " << finished.status().ToString();
    EXPECT_EQ(finished->state, JobState::kDone) << id;
    EXPECT_TRUE(finished->recovered) << id;
  }
  // Re-admission preserved submission order: dispatch sequences ascend
  // with the original ids.
  uint64_t last = 0;
  for (const std::string& id : ids) {
    const auto snapshot = restarted.Get(id);
    ASSERT_TRUE(snapshot.ok());
    EXPECT_GT(snapshot->dispatch_sequence, last) << id;
    last = snapshot->dispatch_sequence;
  }
  // The blocker reached terminal before the "crash", so only the three
  // re-queued jobs count as recovered runs.
  const Counter* recovered_counter = registry.GetCounter(
      "smartml_runs_recovered_total", "Jobs recovered from the journal");
  EXPECT_EQ(recovered_counter->Value(), 3u);
}

TEST(RecoveryTest, CancelledQueuedJobStaysCancelledAfterRestart) {
  const std::string dir = JournalDir("recover_cancelled");
  std::string id;
  {
    SmartML framework;
    JobManager jobs(&framework, Durable(dir, 1));
    ASSERT_TRUE(jobs.Submit(BlockerRequest()).ok());
    auto submitted = jobs.Submit(FastRequest());
    ASSERT_TRUE(submitted.ok());
    id = *submitted;
    auto cancelled = jobs.Cancel(id);
    ASSERT_TRUE(cancelled.ok());
    EXPECT_EQ(cancelled->state, JobState::kCancelled);
  }
  SmartML framework;
  JobManager restarted(&framework, Durable(dir, 1));
  auto after = restarted.Get(id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->state, JobState::kCancelled);
  EXPECT_TRUE(after->recovered);
  EXPECT_EQ(restarted.NumQueued(), 0u);
}

TEST(RecoveryTest, CancelRequestWithoutTerminalLandsCancelled) {
  const std::string dir = JournalDir("recover_cancel_mid");
  std::string id;
  {
    SmartML framework;
    JobManager jobs(&framework, Durable(dir, 1));
    ASSERT_TRUE(jobs.Submit(BlockerRequest()).ok());
    auto submitted = jobs.Submit(FastRequest());
    ASSERT_TRUE(submitted.ok());
    id = *submitted;
  }
  // Simulate a crash after the job was dispatched and its cancellation
  // requested, but before the experiment thread reached the terminal
  // transition: append the two lifecycle records by hand.
  {
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(
        (*journal)
            ->Append({static_cast<uint8_t>(JobJournalRecordType::kDispatch),
                      id, ""})
            .ok());
    ASSERT_TRUE(
        (*journal)
            ->Append(
                {static_cast<uint8_t>(JobJournalRecordType::kCancelRequest),
                 id, ""})
            .ok());
  }
  SmartML framework;
  JobManager restarted(&framework, Durable(dir, 1));
  auto after = restarted.Get(id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->state, JobState::kCancelled)
      << "a cancel requested before the crash must not resurrect the run";
  EXPECT_TRUE(after->recovered);
  EXPECT_EQ(restarted.NumQueued(), 0u);
}

TEST(RecoveryTest, DispatchedJobReQueuesAndCompletesAfterRestart) {
  const std::string dir = JournalDir("recover_midflight");
  std::string id;
  {
    SmartML framework;
    JobManager jobs(&framework, Durable(dir, 1));
    ASSERT_TRUE(jobs.Submit(BlockerRequest()).ok());
    auto submitted = jobs.Submit(FastRequest());
    ASSERT_TRUE(submitted.ok());
    id = *submitted;
  }
  {
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(
        (*journal)
            ->Append({static_cast<uint8_t>(JobJournalRecordType::kDispatch),
                      id, ""})
            .ok());
  }
  SmartML framework;
  JobManager restarted(&framework, Durable(dir, 1));
  auto finished = restarted.Wait(id, 60.0);
  ASSERT_TRUE(finished.ok()) << finished.status().ToString();
  EXPECT_EQ(finished->state, JobState::kDone);
  EXPECT_TRUE(finished->recovered);
}

TEST(RecoveryTest, IdempotencyKeySurvivesRestart) {
  const std::string dir = JournalDir("recover_idem");
  std::string id;
  {
    SmartML framework;
    JobManager jobs(&framework, Durable(dir, 1));
    JobRequest request = FastRequest();
    request.idempotency_key = "client-retry-1";
    auto submitted = jobs.Submit(request);
    ASSERT_TRUE(submitted.ok());
    id = *submitted;
    // Same key, same manager: no duplicate.
    JobRequest retry = FastRequest();
    retry.idempotency_key = "client-retry-1";
    auto duplicate = jobs.Submit(std::move(retry));
    ASSERT_TRUE(duplicate.ok());
    EXPECT_EQ(*duplicate, id);
    ASSERT_TRUE(jobs.Wait(id, 60.0).ok());
  }
  SmartML framework;
  JobManager restarted(&framework, Durable(dir, 1));
  JobRequest retry = FastRequest();
  retry.idempotency_key = "client-retry-1";
  auto duplicate = restarted.Submit(std::move(retry));
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(*duplicate, id)
      << "an idempotent retry after restart must return the original id";
  EXPECT_EQ(restarted.List({}).size(), 1u);
}

TEST(RecoveryTest, IdempotencyKeysAreTenantScoped) {
  SmartML framework;
  JobManager jobs(&framework, Durable(JournalDir("recover_idem_tenant"), 0));
  JobRequest a = FastRequest();
  a.tenant = "team-a";
  a.idempotency_key = "same-key";
  JobRequest b = FastRequest();
  b.tenant = "team-b";
  b.idempotency_key = "same-key";
  auto first = jobs.Submit(std::move(a));
  auto second = jobs.Submit(std::move(b));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second)
      << "the same key from different tenants must admit distinct jobs";
}

TEST(RecoveryTest, BatchIdempotencySurvivesRestart) {
  const std::string dir = JournalDir("recover_batch_idem");
  std::string batch_id;
  std::vector<std::string> job_ids;
  {
    SmartML framework;
    JobManager jobs(&framework, Durable(dir, 0));
    std::vector<JobRequest> requests;
    requests.push_back(FastRequest());
    requests.push_back(FastRequest());
    auto batch = jobs.SubmitBatch(std::move(requests), "nightly-batch");
    ASSERT_TRUE(batch.ok());
    batch_id = batch->batch_id;
    for (const auto& item : batch->items) {
      ASSERT_TRUE(item.ok());
      job_ids.push_back(*item);
    }
  }
  SmartML framework;
  JobManager restarted(&framework, Durable(dir, 1));
  std::vector<JobRequest> retry;
  retry.push_back(FastRequest());
  retry.push_back(FastRequest());
  auto batch = restarted.SubmitBatch(std::move(retry), "nightly-batch");
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->batch_id, batch_id);
  ASSERT_EQ(batch->items.size(), job_ids.size());
  for (size_t i = 0; i < job_ids.size(); ++i) {
    ASSERT_TRUE(batch->items[i].ok());
    EXPECT_EQ(*batch->items[i], job_ids[i]);
  }
  // The two recovered jobs, not four.
  EXPECT_EQ(restarted.List({}).size(), 2u);
}

TEST(RecoveryTest, RestartWithoutJournalDirStartsEmpty) {
  SmartML framework;
  JobManager jobs(&framework, JobManagerOptions{});
  EXPECT_EQ(jobs.journal(), nullptr);
  EXPECT_EQ(jobs.checkpoints(), nullptr);
  EXPECT_TRUE(jobs.List({}).empty());
}

// --------------------------------------------------------------------------
// Tuner checkpoint/resume
// --------------------------------------------------------------------------

TEST(RecoveryTest, SmacResumeIsBitIdentical) {
  const ParamSpace space = BowlSpace();
  SmacOptions base;
  base.max_evaluations = 40;
  base.seed = 7;

  // Reference: one uninterrupted run.
  BowlObjective reference_objective;
  auto reference = Smac(space, &reference_objective, base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Interrupted run: cancel partway through, checkpointing as we go.
  MemoryCheckpointStore store;
  {
    BowlObjective objective;
    auto cancel = std::make_shared<CancelToken>();
    CancelAfter crashing(&objective, 17, cancel);
    SmacOptions options = base;
    options.cancel = cancel;
    options.checkpoint = &store;
    options.checkpoint_key = "run-1/smac/bowl";
    auto interrupted = Smac(space, &crashing, options);
    ASSERT_FALSE(interrupted.ok()) << "the cancel should have aborted SMAC";
    ASSERT_GT(store.Size(), 0u) << "no checkpoint was written before cancel";
  }

  // Resumed run: fresh objective and token, same store and key.
  BowlObjective objective;
  SmacOptions options = base;
  options.checkpoint = &store;
  options.checkpoint_key = "run-1/smac/bowl";
  auto resumed = Smac(space, &objective, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->best_config.ToString(), reference->best_config.ToString());
  EXPECT_EQ(resumed->best_cost, reference->best_cost);
  EXPECT_EQ(resumed->num_evaluations, reference->num_evaluations);
  ASSERT_EQ(resumed->trajectory.size(), reference->trajectory.size());
  for (size_t i = 0; i < resumed->trajectory.size(); ++i) {
    EXPECT_EQ(resumed->trajectory[i], reference->trajectory[i])
        << "trajectory diverged at evaluation " << i;
  }
}

TEST(RecoveryTest, RandomSearchResumeMatchesUninterruptedRun) {
  const ParamSpace space = BowlSpace();
  SearchOptions base;
  base.max_evaluations = 30;
  base.seed = 11;

  BowlObjective reference_objective;
  auto reference = RandomSearch(space, &reference_objective, base);
  ASSERT_TRUE(reference.ok());

  MemoryCheckpointStore store;
  {
    BowlObjective objective;
    auto cancel = std::make_shared<CancelToken>();
    CancelAfter crashing(&objective, 13, cancel);
    SearchOptions options = base;
    options.cancel = cancel;
    options.checkpoint = &store;
    options.checkpoint_key = "run-2/random/bowl";
    auto interrupted = RandomSearch(space, &crashing, options);
    ASSERT_FALSE(interrupted.ok());
  }

  BowlObjective objective;
  SearchOptions options = base;
  options.checkpoint = &store;
  options.checkpoint_key = "run-2/random/bowl";
  auto resumed = RandomSearch(space, &objective, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->best_config.ToString(), reference->best_config.ToString());
  EXPECT_EQ(resumed->best_cost, reference->best_cost);
  EXPECT_EQ(resumed->num_evaluations, reference->num_evaluations);
}

TEST(RecoveryTest, GeneticResumeMatchesUninterruptedRun) {
  const ParamSpace space = BowlSpace();
  GeneticOptions base;
  base.max_evaluations = 48;
  base.seed = 13;
  base.population_size = 8;

  BowlObjective reference_objective;
  auto reference = GeneticSearch(space, &reference_objective, base);
  ASSERT_TRUE(reference.ok());

  MemoryCheckpointStore store;
  {
    BowlObjective objective;
    auto cancel = std::make_shared<CancelToken>();
    CancelAfter crashing(&objective, 21, cancel);
    GeneticOptions options = base;
    options.cancel = cancel;
    options.checkpoint = &store;
    options.checkpoint_key = "run-3/ga/bowl";
    auto interrupted = GeneticSearch(space, &crashing, options);
    ASSERT_FALSE(interrupted.ok());
  }

  BowlObjective objective;
  GeneticOptions options = base;
  options.checkpoint = &store;
  options.checkpoint_key = "run-3/ga/bowl";
  auto resumed = GeneticSearch(space, &objective, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->best_config.ToString(), reference->best_config.ToString());
  EXPECT_EQ(resumed->best_cost, reference->best_cost);
  EXPECT_EQ(resumed->num_evaluations, reference->num_evaluations);
}

TEST(RecoveryTest, CorruptCheckpointFallsBackToFreshRun) {
  const ParamSpace space = BowlSpace();
  MemoryCheckpointStore store;
  ASSERT_TRUE(store.Put("run-4/smac/bowl", "not a checkpoint at all").ok());
  BowlObjective objective;
  SmacOptions options;
  options.max_evaluations = 20;
  options.seed = 3;
  options.checkpoint = &store;
  options.checkpoint_key = "run-4/smac/bowl";
  auto result = Smac(space, &objective, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->resumed)
      << "an unparseable checkpoint must be treated as absent";
  EXPECT_GT(result->num_evaluations, 0u);
}

}  // namespace
}  // namespace smartml
