// Tests for src/common: Status/StatusOr, Rng, strings, stopwatch/deadline,
// and the Gaussian distribution helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/distributions.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/strings.h"

namespace smartml {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  SMARTML_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values hit.
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, PermutationCoversAllIndices) {
  Rng rng(19);
  const std::vector<size_t> p = rng.Permutation(50);
  std::set<size_t> unique(p.begin(), p.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    counts[rng.WeightedIndex(weights)]++;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitCsvLineQuoted) {
  const auto parts = SplitCsvLine(R"(a,"b,c","d""e",f)");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "b,c");
  EXPECT_EQ(parts[2], "d\"e");
  EXPECT_EQ(parts[3], "f");
}

TEST(StringsTest, SplitCsvLineStripsCarriageReturn) {
  const auto parts = SplitCsvLine("a,b\r");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(StringsTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("AbC123"), "abc123");
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("12x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// ---------------------------------------------------------------------------
// Stopwatch / Deadline
// ---------------------------------------------------------------------------

TEST(StopwatchTest, ElapsedIsMonotone) {
  Stopwatch w;
  const double t1 = w.ElapsedSeconds();
  const double t2 = w.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.Remaining()));
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d = Deadline::After(0.0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, PositiveBudgetInitiallyLive) {
  Deadline d = Deadline::After(60.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.Remaining(), 59.0);
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(DistributionsTest, NormalPdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-12);
}

TEST(DistributionsTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-7) << "p=" << p;
  }
}

TEST(DistributionsTest, QuantileSymmetry) {
  EXPECT_NEAR(NormalQuantile(0.25), -NormalQuantile(0.75), 1e-9);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
}

}  // namespace
}  // namespace smartml
