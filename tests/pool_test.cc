// Thread-pool and ParallelFor tests: full coverage of the index space at
// several pool widths, the deterministic error model (lowest index wins,
// exceptions become Status::Internal), cancellation mid-loop, nested
// ParallelFor on a starved pool (the historical deadlock shape), bounded
// queues, and end-to-end determinism of SmartML::Run across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/thread_pool.h"
#include "src/core/smartml.h"
#include "src/data/synthetic.h"

namespace smartml {
namespace {

// ---------------------------------------------------------------------------
// ParallelFor basics
// ---------------------------------------------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnceAtAnyWidth) {
  for (int workers : {0, 1, 7}) {
    std::unique_ptr<ThreadPool> pool;
    if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    Status status = ParallelFor(
        kN,
        [&](size_t i) -> Status {
          hits[i].fetch_add(1);
          return Status::OK();
        },
        /*cancel=*/nullptr, pool.get());
    ASSERT_TRUE(status.ok()) << status.ToString();
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
  }
}

TEST(ParallelForTest, ZeroAndOneIterationDegenerateCases) {
  ThreadPool pool(2);
  int calls = 0;
  EXPECT_TRUE(ParallelFor(
                  0, [&](size_t) -> Status { return Status::OK(); },
                  nullptr, &pool)
                  .ok());
  Status status = ParallelFor(
      1,
      [&](size_t i) -> Status {
        EXPECT_EQ(i, 0u);
        ++calls;  // Single iteration runs on the caller; no race.
        return Status::OK();
      },
      nullptr, &pool);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, LowestIndexErrorWinsDeterministically) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    Status status = ParallelFor(
        64,
        [&](size_t i) -> Status {
          if (i % 2 == 1) {
            return Status::Internal("boom at " + std::to_string(i));
          }
          return Status::OK();
        },
        nullptr, &pool);
    ASSERT_FALSE(status.ok());
    // All odd indices fail; index 1 is the lowest and must be reported no
    // matter which strand got there first.
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.ToString().find("boom at 1"), std::string::npos)
        << status.ToString();
  }
}

TEST(ParallelForTest, ExceptionsAreCapturedAsInternal) {
  ThreadPool pool(3);
  Status status = ParallelFor(
      16,
      [&](size_t i) -> Status {
        if (i == 0) throw std::runtime_error("kaboom");
        return Status::OK();
      },
      nullptr, &pool);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("kaboom"), std::string::npos)
      << status.ToString();
}

TEST(ParallelForTest, CancellationMidLoopStopsFurtherClaims) {
  ThreadPool pool(4);
  CancelToken token;
  std::atomic<int> started{0};
  Status status = ParallelFor(
      10000,
      [&](size_t) -> Status {
        if (started.fetch_add(1) == 8) token.Cancel();
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        return Status::OK();
      },
      &token, &pool);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  // The loop must stop long before exhausting the index space.
  EXPECT_LT(started.load(), 10000);
}

TEST(ParallelForTest, TaskReportedCancellationWinsOverGenericMessage) {
  ThreadPool pool(2);
  Status status = ParallelFor(
      4,
      [&](size_t i) -> Status {
        if (i == 0) return Status::Cancelled("tuner: run cancelled");
        return Status::OK();
      },
      nullptr, &pool);
  ASSERT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.ToString().find("tuner: run cancelled"), std::string::npos)
      << status.ToString();
}

// The historical deadlock shape: an outer ParallelFor occupies the only
// worker, and every task issues an inner ParallelFor against the same pool.
// Work-contribution means the inner caller always drains its own indices.
TEST(ParallelForTest, NestedParallelForOnStarvedPoolDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  Status status = ParallelFor(
      8,
      [&](size_t) -> Status {
        return ParallelFor(
            32,
            [&](size_t) -> Status {
              total.fetch_add(1);
              return Status::OK();
            },
            nullptr, &pool);
      },
      nullptr, &pool);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(total.load(), 8 * 32);
}

TEST(ParallelForTest, TinyQueueOverflowOnlyReducesHelpers) {
  // Queue of 1 forces most TrySubmit calls to fail; correctness must not
  // depend on how many helpers were accepted.
  ThreadPool pool(4, /*max_queued_tasks=*/1);
  std::atomic<int> total{0};
  Status status = ParallelFor(
      500,
      [&](size_t) -> Status {
        total.fetch_add(1);
        return Status::OK();
      },
      nullptr, &pool);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(total.load(), 500);
}

TEST(ParallelForTest, ConcurrentCallersShareOnePool) {
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::vector<int> sums(6, 0);
  for (size_t c = 0; c < sums.size(); ++c) {
    callers.emplace_back([&, c] {
      std::atomic<int> sum{0};
      Status status = ParallelFor(
          200,
          [&](size_t) -> Status {
            sum.fetch_add(1);
            return Status::OK();
          },
          nullptr, &pool);
      if (status.ok()) sums[c] = sum.load();
    });
  }
  for (auto& t : callers) t.join();
  for (size_t c = 0; c < sums.size(); ++c) {
    EXPECT_EQ(sums[c], 200) << "caller " << c;
  }
}

TEST(ParallelForRangesTest, RangesTileTheIndexSpace) {
  ThreadPool pool(3);
  constexpr size_t kN = 1003;  // Deliberately not a multiple of the grain.
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  Status status = ParallelForRanges(
      kN, /*grain=*/64,
      [&](size_t begin, size_t end) -> Status {
        EXPECT_LT(begin, end);
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        return Status::OK();
      },
      nullptr, &pool);
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ScopedPoolScopeInstallsAndRestores) {
  EXPECT_EQ(CurrentThreadPool(), nullptr);
  ThreadPool pool(2);
  {
    ScopedPoolScope outer(&pool);
    EXPECT_EQ(CurrentThreadPool(), &pool);
    {
      ScopedPoolScope inner(nullptr);  // A sequential sub-scope.
      EXPECT_EQ(CurrentThreadPool(), nullptr);
    }
    EXPECT_EQ(CurrentThreadPool(), &pool);
  }
  EXPECT_EQ(CurrentThreadPool(), nullptr);
}

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_GE(ResolveNumThreads(0), 1);   // Auto: hardware concurrency.
  EXPECT_GE(ResolveNumThreads(-3), 1);  // Negative values are "auto" too.
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(8), 8);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: the whole pipeline must be bit-identical at any
// thread count (per-task RNG streams + plan/evaluate/replay tuner batches).
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, RunIsIdenticalAtOneAndEightThreads) {
  SyntheticSpec spec;
  spec.num_instances = 120;
  spec.class_sep = 1.5;
  spec.seed = 91;
  spec.name = "determinism_ds";
  const Dataset dataset = GenerateSynthetic(spec);

  auto run = [&](int num_threads) {
    SmartMlOptions options;
    options.max_evaluations = 24;
    options.cv_folds = 2;
    options.cold_start_algorithms = {"knn", "naive_bayes", "rpart",
                                     "random_forest"};
    options.enable_ensembling = true;
    options.enable_interpretability = false;
    options.update_kb = false;
    options.num_threads = num_threads;
    SmartML framework(options);
    auto result = framework.Run(dataset, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result;
  };

  auto sequential = run(1);
  auto parallel = run(8);
  ASSERT_TRUE(sequential.ok() && parallel.ok());

  EXPECT_EQ(sequential->best_algorithm, parallel->best_algorithm);
  EXPECT_EQ(sequential->best_config.ToString(),
            parallel->best_config.ToString());
  EXPECT_DOUBLE_EQ(sequential->best_validation_accuracy,
                   parallel->best_validation_accuracy);
  ASSERT_EQ(sequential->per_algorithm.size(), parallel->per_algorithm.size());
  for (size_t i = 0; i < sequential->per_algorithm.size(); ++i) {
    const AlgorithmRunResult& a = sequential->per_algorithm[i];
    const AlgorithmRunResult& b = parallel->per_algorithm[i];
    EXPECT_EQ(a.algorithm, b.algorithm) << i;
    EXPECT_EQ(a.best_config.ToString(), b.best_config.ToString()) << i;
    EXPECT_DOUBLE_EQ(a.validation_accuracy, b.validation_accuracy) << i;
    EXPECT_DOUBLE_EQ(a.tuning_cost, b.tuning_cost) << i;
    EXPECT_EQ(a.evaluations, b.evaluations) << i;
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size()) << i;
    for (size_t t = 0; t < a.trajectory.size(); ++t) {
      EXPECT_DOUBLE_EQ(a.trajectory[t], b.trajectory[t]) << i << ":" << t;
    }
  }
}

}  // namespace
}  // namespace smartml
