// Tests for ParamSpace / ParamConfig, including parameterized property
// sweeps over all 15 registered algorithm spaces.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/ml/registry.h"
#include "src/tuning/param_space.h"

namespace smartml {
namespace {

ParamSpace MakeSpace() {
  ParamSpace space;
  space.AddDouble("c", 0.01, 100.0, 1.0, /*log_scale=*/true);
  space.AddInt("k", 1, 50, 5);
  space.AddCategorical("kernel", {"linear", "rbf", "poly"}, "rbf");
  space.AddDouble("gamma", 1e-4, 10.0, 0.1, /*log_scale=*/true);
  space.Condition("gamma", "kernel", {"rbf", "poly"});
  return space;
}

TEST(ParamConfigTest, TypedAccessors) {
  ParamConfig config;
  config.SetDouble("a", 1.5);
  config.SetInt("b", 7);
  config.SetChoice("c", "hello");
  EXPECT_DOUBLE_EQ(config.GetDouble("a", 0), 1.5);
  EXPECT_EQ(config.GetInt("b", 0), 7);
  EXPECT_EQ(config.GetChoice("c", ""), "hello");
  // Cross-type coercion int <-> double.
  EXPECT_DOUBLE_EQ(config.GetDouble("b", 0), 7.0);
  EXPECT_EQ(config.GetInt("a", 0), 2);  // Rounded.
  // Fallbacks.
  EXPECT_DOUBLE_EQ(config.GetDouble("missing", -1), -1.0);
  EXPECT_EQ(config.GetChoice("a", "fb"), "fb");
}

TEST(ParamConfigTest, StringRoundTrip) {
  ParamConfig config;
  config.SetDouble("x", 0.125);
  config.SetInt("n", 42);
  config.SetChoice("mode", "fast");
  auto back = ParamConfig::FromString(config.ToString());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, config);
}

TEST(ParamConfigTest, FromStringErrors) {
  EXPECT_FALSE(ParamConfig::FromString("novalue").ok());
  EXPECT_FALSE(ParamConfig::FromString("=x").ok());
  EXPECT_TRUE(ParamConfig::FromString("").ok());  // Empty config is valid.
}

TEST(ParamSpaceTest, Counts) {
  const ParamSpace space = MakeSpace();
  EXPECT_EQ(space.NumParams(), 4u);
  EXPECT_EQ(space.NumCategorical(), 1u);
  EXPECT_EQ(space.NumNumeric(), 3u);
}

TEST(ParamSpaceTest, DefaultConfigHasAllParams) {
  const ParamSpace space = MakeSpace();
  const ParamConfig config = space.DefaultConfig();
  EXPECT_EQ(config.size(), 4u);
  EXPECT_DOUBLE_EQ(config.GetDouble("c", 0), 1.0);
  EXPECT_EQ(config.GetChoice("kernel", ""), "rbf");
}

TEST(ParamSpaceTest, SamplesStayInBounds) {
  const ParamSpace space = MakeSpace();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const ParamConfig config = space.Sample(&rng);
    const double c = config.GetDouble("c", -1);
    EXPECT_GE(c, 0.01);
    EXPECT_LE(c, 100.0);
    const int64_t k = config.GetInt("k", -1);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 50);
    const std::string kernel = config.GetChoice("kernel", "");
    EXPECT_TRUE(kernel == "linear" || kernel == "rbf" || kernel == "poly");
  }
}

TEST(ParamSpaceTest, LogScaleSamplingCoversDecades) {
  ParamSpace space;
  space.AddDouble("x", 1e-4, 1e4, 1.0, /*log_scale=*/true);
  Rng rng(2);
  int low = 0, high = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = space.Sample(&rng).GetDouble("x", 0);
    if (v < 1e-2) ++low;
    if (v > 1e2) ++high;
  }
  // Log-uniform: each 2-decade band holds ~25%.
  EXPECT_GT(low, 300);
  EXPECT_GT(high, 300);
}

TEST(ParamSpaceTest, NeighborChangesConfiguration) {
  const ParamSpace space = MakeSpace();
  Rng rng(3);
  const ParamConfig base = space.DefaultConfig();
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    const ParamConfig next = space.Neighbor(base, &rng);
    if (!(next == base)) ++changed;
  }
  EXPECT_GT(changed, 80);
}

TEST(ParamSpaceTest, NeighborStaysInBounds) {
  const ParamSpace space = MakeSpace();
  Rng rng(5);
  ParamConfig cursor = space.DefaultConfig();
  for (int i = 0; i < 300; ++i) {
    cursor = space.Neighbor(cursor, &rng);
    EXPECT_GE(cursor.GetDouble("c", -1), 0.01 - 1e-12);
    EXPECT_LE(cursor.GetDouble("c", -1), 100.0 + 1e-12);
    EXPECT_GE(cursor.GetInt("k", -1), 1);
    EXPECT_LE(cursor.GetInt("k", -1), 50);
  }
}

TEST(ParamSpaceTest, ConditionalActivation) {
  const ParamSpace space = MakeSpace();
  const ParamSpec* gamma = space.Find("gamma");
  ASSERT_NE(gamma, nullptr);
  ParamConfig config = space.DefaultConfig();
  config.SetChoice("kernel", "rbf");
  EXPECT_TRUE(space.IsActive(*gamma, config));
  config.SetChoice("kernel", "linear");
  EXPECT_FALSE(space.IsActive(*gamma, config));
}

TEST(ParamSpaceTest, EncodeWidthAndRanges) {
  const ParamSpace space = MakeSpace();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const ParamConfig config = space.Sample(&rng);
    const std::vector<double> enc = space.Encode(config);
    ASSERT_EQ(enc.size(), 4u);
    // Numeric dims in [0,1] (or -1 if conditionally inactive).
    EXPECT_GE(enc[0], 0.0);
    EXPECT_LE(enc[0], 1.0);
    EXPECT_TRUE(enc[3] == -1.0 || (enc[3] >= 0.0 && enc[3] <= 1.0));
  }
}

TEST(ParamSpaceTest, EncodeInactiveIsMinusOne) {
  const ParamSpace space = MakeSpace();
  ParamConfig config = space.DefaultConfig();
  config.SetChoice("kernel", "linear");
  const std::vector<double> enc = space.Encode(config);
  EXPECT_DOUBLE_EQ(enc[3], -1.0);  // gamma inactive.
}

TEST(ParamSpaceTest, RepairClampsAndFills) {
  const ParamSpace space = MakeSpace();
  ParamConfig bad;
  bad.SetDouble("c", 1e9);
  bad.SetInt("k", -100);
  bad.SetChoice("kernel", "bogus");
  bad.SetChoice("unknown_key", "x");
  const ParamConfig fixed = space.Repair(bad);
  EXPECT_DOUBLE_EQ(fixed.GetDouble("c", 0), 100.0);
  EXPECT_EQ(fixed.GetInt("k", 0), 1);
  EXPECT_EQ(fixed.GetChoice("kernel", ""), "rbf");
  EXPECT_FALSE(fixed.Has("unknown_key"));
  EXPECT_TRUE(fixed.Has("gamma"));  // Filled with default.
}

// ---------------------------------------------------------------------------
// Property sweep across all 15 registered algorithm spaces.
// ---------------------------------------------------------------------------

class AlgorithmSpaceTest : public testing::TestWithParam<std::string> {};

TEST_P(AlgorithmSpaceTest, SpaceMatchesTable3Counts) {
  const std::string algo = GetParam();
  auto space = SpaceFor(algo);
  ASSERT_TRUE(space.ok());
  const AlgorithmInfo* info = nullptr;
  for (const auto& a : AllAlgorithms()) {
    if (a.name == algo) info = &a;
  }
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(space->NumCategorical(), info->categorical_params)
      << algo << ": categorical parameter count must match Table 3";
  EXPECT_EQ(space->NumNumeric(), info->numerical_params)
      << algo << ": numeric parameter count must match Table 3";
}

TEST_P(AlgorithmSpaceTest, SamplesRepairToThemselves) {
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const ParamConfig config = space->Sample(&rng);
    const ParamConfig repaired = space->Repair(config);
    EXPECT_TRUE(repaired == config) << GetParam();
  }
}

TEST_P(AlgorithmSpaceTest, DefaultConfigSerializes) {
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  const ParamConfig config = space->DefaultConfig();
  auto back = ParamConfig::FromString(config.ToString());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == config) << GetParam();
}

TEST_P(AlgorithmSpaceTest, EncodeIsStableWidth) {
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  Rng rng(13);
  const size_t width = space->Encode(space->DefaultConfig()).size();
  EXPECT_EQ(width, space->NumParams());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(space->Encode(space->Sample(&rng)).size(), width);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmSpaceTest,
                         testing::ValuesIn(AllAlgorithmNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace smartml
