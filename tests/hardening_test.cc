// Fuzz-style hardening tests: truncated, garbage and structurally broken
// inputs fed to every text parser that accepts external data (ARFF, CSV, KB
// cache). Each case must come back as a Status error — never a crash, hang
// or silent partial parse presented as success.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/data/arff.h"
#include "src/data/csv.h"
#include "src/kb/knowledge_base.h"

namespace smartml {
namespace {

// ---------------------------------------------------------------------------
// ARFF
// ---------------------------------------------------------------------------

const char kGoodArff[] =
    "@relation demo\n"
    "@attribute a numeric\n"
    "@attribute b numeric\n"
    "@attribute class {yes,no}\n"
    "@data\n"
    "1.0,2.0,yes\n"
    "3.0,4.0,no\n";

TEST(ArffHardeningTest, WellFormedBaselineParses) {
  auto dataset = ReadArffString(kGoodArff);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->NumRows(), 2u);
}

TEST(ArffHardeningTest, TruncationsAtEveryByteNeverCrash) {
  const std::string good = kGoodArff;
  for (size_t len = 0; len < good.size(); ++len) {
    auto dataset = ReadArffString(good.substr(0, len));
    // Some prefixes are legitimately complete (e.g. ending after a full data
    // row); the rest must fail cleanly. Either way: no crash.
    if (!dataset.ok()) {
      EXPECT_FALSE(dataset.status().message().empty());
    }
  }
}

TEST(ArffHardeningTest, GarbageInputsAreStatusErrors) {
  const std::vector<std::string> cases = {
      "",
      "\n\n\n",
      "complete garbage",
      "@data\n1,2,3\n",                            // Data before attributes.
      "@relation x\n@attribute a numeric\n@data\n en,dash \n",
      "@relation x\n@attribute class {a,b}\n@data\nc\n",  // Unknown label.
      "@relation x\n@attribute a numeric\n@attribute class {y,n}\n"
      "@data\n1\n",                                // Too few columns.
      "@relation x\n@attribute a numeric\n@attribute class {y,n}\n"
      "@data\n1,2,3,4\n",                          // Too many columns.
      std::string(3, '\0') + "@relation x\n",      // Embedded NULs.
      "@relation \xff\xfe\n@data\n",               // Non-UTF8 bytes.
  };
  for (const auto& text : cases) {
    auto dataset = ReadArffString(text);
    EXPECT_FALSE(dataset.ok()) << "accepted: " << text.substr(0, 40);
  }
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvHardeningTest, GarbageInputsAreStatusErrors) {
  const std::vector<std::string> cases = {
      "",
      "\n",
      "a,b,class\n",              // Header only, zero rows.
      "a,b,class\n1,2\n",         // Ragged row (too few fields).
      "a,b,class\n1,2,3,4\n",     // Ragged row (too many fields).
  };
  for (const auto& text : cases) {
    auto dataset = ReadCsvString(text);
    EXPECT_FALSE(dataset.ok()) << "accepted: " << text.substr(0, 40);
  }
}

TEST(CsvHardeningTest, TruncationsOfValidFileNeverCrash) {
  const std::string good = "a,b,class\n1.5,2.5,x\n3.5,4.5,y\n2.5,3.5,x\n";
  for (size_t len = 0; len < good.size(); ++len) {
    auto dataset = ReadCsvString(good.substr(0, len));
    if (!dataset.ok()) {
      EXPECT_FALSE(dataset.status().message().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// KB cache
// ---------------------------------------------------------------------------

std::string SerializedKb() {
  KnowledgeBase kb;
  for (int i = 0; i < 3; ++i) {
    KbRecord record;
    record.dataset_name = "ds_" + std::to_string(i);
    record.meta_features[0] = 10.0 * i;
    KbAlgorithmResult result;
    result.algorithm = "svm";
    result.accuracy = 0.5;
    record.results.push_back(result);
    kb.AddRecord(record);
  }
  return kb.Serialize();
}

TEST(KbHardeningTest, GarbageInputsAreStatusErrors) {
  const std::vector<std::string> cases = {
      "complete garbage",
      "smartml_kb not_a_version\n",
      "\x00\x01\x02",
      "crc32 deadbeef\n",
  };
  for (const auto& text : cases) {
    auto kb = KnowledgeBase::Deserialize(text);
    EXPECT_FALSE(kb.ok()) << "accepted: " << text.substr(0, 40);
  }
}

TEST(KbHardeningTest, EveryTruncationParsesStrictlyOrFailsCleanly) {
  const std::string good = SerializedKb();
  for (size_t len = 0; len < good.size(); ++len) {
    auto kb = KnowledgeBase::Deserialize(good.substr(0, len));
    if (kb.ok()) {
      EXPECT_LE(kb->NumRecords(), 3u);
    }
  }
}

TEST(KbHardeningTest, EveryTruncationSalvagesWithoutCrashing) {
  const std::string good = SerializedKb();
  for (size_t len = 0; len < good.size(); ++len) {
    size_t skipped = 0;
    auto kb = KnowledgeBase::DeserializeSalvage(good.substr(0, len), &skipped);
    if (kb.ok()) {
      EXPECT_LE(kb->NumRecords(), 3u);
    }
  }
}

TEST(KbHardeningTest, ByteFlipsAreDetectedByTheChecksum) {
  const std::string good = SerializedKb();
  // Flip a byte at several positions across the body; the strict parser must
  // either reject (checksum/format) — flips inside numeric fields must never
  // pass the checksum silently.
  for (size_t pos = 0; pos < good.size(); pos += 7) {
    std::string corrupted = good;
    corrupted[pos] ^= 0x04;
    if (corrupted == good) continue;
    auto kb = KnowledgeBase::Deserialize(corrupted);
    EXPECT_FALSE(kb.ok()) << "undetected corruption at byte " << pos;
  }
}

TEST(KbHardeningTest, SalvageReportsSkippedLines) {
  std::string torn = SerializedKb();
  torn = torn.substr(0, torn.size() / 2);
  torn += "\nnot a kb line at all\n";
  size_t skipped = 0;
  auto kb = KnowledgeBase::DeserializeSalvage(torn, &skipped);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_GE(skipped, 1u);
}

}  // namespace
}  // namespace smartml
