// Fuzz-style hardening tests: truncated, garbage and structurally broken
// inputs fed to every text parser that accepts external data (ARFF, CSV, KB
// cache). Each case must come back as a Status error — never a crash, hang
// or silent partial parse presented as success.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/data/arff.h"
#include "src/data/csv.h"
#include "src/kb/knowledge_base.h"
#include "src/persist/checkpoint.h"
#include "src/persist/journal.h"

namespace smartml {
namespace {

// ---------------------------------------------------------------------------
// ARFF
// ---------------------------------------------------------------------------

const char kGoodArff[] =
    "@relation demo\n"
    "@attribute a numeric\n"
    "@attribute b numeric\n"
    "@attribute class {yes,no}\n"
    "@data\n"
    "1.0,2.0,yes\n"
    "3.0,4.0,no\n";

TEST(ArffHardeningTest, WellFormedBaselineParses) {
  auto dataset = ReadArffString(kGoodArff);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->NumRows(), 2u);
}

TEST(ArffHardeningTest, TruncationsAtEveryByteNeverCrash) {
  const std::string good = kGoodArff;
  for (size_t len = 0; len < good.size(); ++len) {
    auto dataset = ReadArffString(good.substr(0, len));
    // Some prefixes are legitimately complete (e.g. ending after a full data
    // row); the rest must fail cleanly. Either way: no crash.
    if (!dataset.ok()) {
      EXPECT_FALSE(dataset.status().message().empty());
    }
  }
}

TEST(ArffHardeningTest, GarbageInputsAreStatusErrors) {
  const std::vector<std::string> cases = {
      "",
      "\n\n\n",
      "complete garbage",
      "@data\n1,2,3\n",                            // Data before attributes.
      "@relation x\n@attribute a numeric\n@data\n en,dash \n",
      "@relation x\n@attribute class {a,b}\n@data\nc\n",  // Unknown label.
      "@relation x\n@attribute a numeric\n@attribute class {y,n}\n"
      "@data\n1\n",                                // Too few columns.
      "@relation x\n@attribute a numeric\n@attribute class {y,n}\n"
      "@data\n1,2,3,4\n",                          // Too many columns.
      std::string(3, '\0') + "@relation x\n",      // Embedded NULs.
      "@relation \xff\xfe\n@data\n",               // Non-UTF8 bytes.
  };
  for (const auto& text : cases) {
    auto dataset = ReadArffString(text);
    EXPECT_FALSE(dataset.ok()) << "accepted: " << text.substr(0, 40);
  }
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvHardeningTest, GarbageInputsAreStatusErrors) {
  const std::vector<std::string> cases = {
      "",
      "\n",
      "a,b,class\n",              // Header only, zero rows.
      "a,b,class\n1,2\n",         // Ragged row (too few fields).
      "a,b,class\n1,2,3,4\n",     // Ragged row (too many fields).
  };
  for (const auto& text : cases) {
    auto dataset = ReadCsvString(text);
    EXPECT_FALSE(dataset.ok()) << "accepted: " << text.substr(0, 40);
  }
}

TEST(CsvHardeningTest, TruncationsOfValidFileNeverCrash) {
  const std::string good = "a,b,class\n1.5,2.5,x\n3.5,4.5,y\n2.5,3.5,x\n";
  for (size_t len = 0; len < good.size(); ++len) {
    auto dataset = ReadCsvString(good.substr(0, len));
    if (!dataset.ok()) {
      EXPECT_FALSE(dataset.status().message().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// KB cache
// ---------------------------------------------------------------------------

std::string SerializedKb() {
  KnowledgeBase kb;
  for (int i = 0; i < 3; ++i) {
    KbRecord record;
    record.dataset_name = "ds_" + std::to_string(i);
    record.meta_features[0] = 10.0 * i;
    KbAlgorithmResult result;
    result.algorithm = "svm";
    result.accuracy = 0.5;
    record.results.push_back(result);
    kb.AddRecord(record);
  }
  return kb.Serialize();
}

TEST(KbHardeningTest, GarbageInputsAreStatusErrors) {
  const std::vector<std::string> cases = {
      "complete garbage",
      "smartml_kb not_a_version\n",
      "\x00\x01\x02",
      "crc32 deadbeef\n",
  };
  for (const auto& text : cases) {
    auto kb = KnowledgeBase::Deserialize(text);
    EXPECT_FALSE(kb.ok()) << "accepted: " << text.substr(0, 40);
  }
}

TEST(KbHardeningTest, EveryTruncationParsesStrictlyOrFailsCleanly) {
  const std::string good = SerializedKb();
  for (size_t len = 0; len < good.size(); ++len) {
    auto kb = KnowledgeBase::Deserialize(good.substr(0, len));
    if (kb.ok()) {
      EXPECT_LE(kb->NumRecords(), 3u);
    }
  }
}

TEST(KbHardeningTest, EveryTruncationSalvagesWithoutCrashing) {
  const std::string good = SerializedKb();
  for (size_t len = 0; len < good.size(); ++len) {
    size_t skipped = 0;
    auto kb = KnowledgeBase::DeserializeSalvage(good.substr(0, len), &skipped);
    if (kb.ok()) {
      EXPECT_LE(kb->NumRecords(), 3u);
    }
  }
}

TEST(KbHardeningTest, ByteFlipsAreDetectedByTheChecksum) {
  const std::string good = SerializedKb();
  // Flip a byte at several positions across the body; the strict parser must
  // either reject (checksum/format) — flips inside numeric fields must never
  // pass the checksum silently.
  for (size_t pos = 0; pos < good.size(); pos += 7) {
    std::string corrupted = good;
    corrupted[pos] ^= 0x04;
    if (corrupted == good) continue;
    auto kb = KnowledgeBase::Deserialize(corrupted);
    EXPECT_FALSE(kb.ok()) << "undetected corruption at byte " << pos;
  }
}

TEST(KbHardeningTest, SalvageReportsSkippedLines) {
  std::string torn = SerializedKb();
  torn = torn.substr(0, torn.size() / 2);
  torn += "\nnot a kb line at all\n";
  size_t skipped = 0;
  auto kb = KnowledgeBase::DeserializeSalvage(torn, &skipped);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_GE(skipped, 1u);
}

// ---------------------------------------------------------------------------
// Job journal + checkpoint store (the durability layer's external inputs:
// segment files on disk after a crash, each exercised under the fault points
// the layer introduces — journal_write_torn, journal_fsync_fail,
// checkpoint_corrupt)
// ---------------------------------------------------------------------------

class JournalHardeningTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
    dir_ = testing::TempDir() + "/journal_hardening_" +
           std::to_string(::getpid()) + "_" + std::to_string(counter_++);
  }
  void TearDown() override {
    ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
  }

  static size_t CountReplayed(const std::string& dir) {
    auto journal = JobJournal::Open(dir);
    EXPECT_TRUE(journal.ok());
    size_t count = 0;
    auto stats = (*journal)->Replay([&](const JournalRecord&) { ++count; });
    EXPECT_TRUE(stats.ok());
    return count;
  }

  std::string dir_;
  static int counter_;
};

int JournalHardeningTest::counter_ = 0;

TEST_F(JournalHardeningTest, GarbageSegmentFilesNeverCrashReplay) {
  const std::vector<std::string> garbage = {
      "",
      "not a journal at all",
      std::string(64, '\0'),
      std::string(64, '\xff'),                    // Huge body_len prefix.
      std::string("\x04\x00\x00\x00") + "zzzz",   // Length, then garbage crc.
      EncodeJournalFrame({1, "k", "v"}).substr(0, 7),  // Sub-header tail.
  };
  for (const std::string& bytes : garbage) {
    const std::string dir = dir_ + "_g" + std::to_string(&bytes - &garbage[0]);
    ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
    std::ofstream out(dir + "/journal-000001.wal", std::ios::binary);
    out << bytes;
    out.close();
    EXPECT_EQ(CountReplayed(dir), 0u) << "fabricated records from garbage";
  }
}

TEST_F(JournalHardeningTest, TornWriteAtEveryRecordSalvagesThePrefix) {
  // Fire journal_write_torn on the k-th append: replay must salvage exactly
  // the k records before it, for every k.
  for (size_t k = 0; k < 5; ++k) {
    const std::string dir = dir_ + "_t" + std::to_string(k);
    {
      auto journal = JobJournal::Open(dir);
      ASSERT_TRUE(journal.ok());
      for (size_t i = 0; i < 5; ++i) {
        if (i == k) {
          ASSERT_TRUE(FaultInjection::Instance()
                          .SetSpec("journal_write_torn:1x")
                          .ok());
        }
        (void)(*journal)->Append(
            {1, "job-" + std::to_string(i), "payload"});
      }
      ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
    }
    // Salvage stops at the torn frame: the records after it were written
    // into the same segment and are unreachable until compaction rewrites
    // it — exactly the crash-consistency contract.
    EXPECT_EQ(CountReplayed(dir), k) << "torn append " << k;
  }
}

TEST_F(JournalHardeningTest, FsyncFailuresLeaveTheJournalConsistent) {
  {
    auto journal = JobJournal::Open(dir_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append({1, "a", "ok"}).ok());
    // Every other append fails its fsync; the caller sees the error either
    // way, and the journal must stay appendable and replayable.
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          FaultInjection::Instance().SetSpec("journal_fsync_fail:1x").ok());
      EXPECT_FALSE((*journal)->Append({1, "flaky", "x"}).ok());
      ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
      ASSERT_TRUE((*journal)->Append({1, "b", "ok"}).ok());
    }
  }
  // Unacknowledged records may or may not survive (fsync failed after the
  // write); acknowledged ones must. No crash, no fabricated records.
  auto journal = JobJournal::Open(dir_);
  ASSERT_TRUE(journal.ok());
  size_t acked = 0, total = 0;
  auto stats = (*journal)->Replay([&](const JournalRecord& record) {
    ++total;
    if (record.payload == "ok") ++acked;
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(acked, 7u);
  EXPECT_LE(total, 13u);
}

TEST_F(JournalHardeningTest, CheckpointByteFlipsNeverReturnCorruptData) {
  FileCheckpointStore store(dir_);
  const std::string blob = "generation 7 rng 0x1p3 incumbent 0.25\n";
  ASSERT_TRUE(store.Put("job/state", blob).ok());
  const std::string path = dir_ + "/" + FileCheckpointStore::SanitizeKey(
                                            "job/state");
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string good = buf.str();
  in.close();
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    if (bad == good) continue;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << bad;
    }
    auto loaded = store.Get("job/state");
    // A flip inside the hex trailer may be semantically neutral (case of a
    // hex digit); every other flip must fail the crc. Never corrupt data.
    if (loaded.ok()) {
      EXPECT_EQ(*loaded, blob) << "silent corruption at byte " << pos;
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << good;
}

TEST_F(JournalHardeningTest, CheckpointCorruptFaultAlwaysFailsClosed) {
  FileCheckpointStore store(dir_);
  ASSERT_TRUE(store.Put("job/state", "tuner state").ok());
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("checkpoint_corrupt").ok());
  for (int i = 0; i < 8; ++i) {
    auto loaded = store.Get("job/state");
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().code(), StatusCode::kNotFound);
  }
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
  auto clean = store.Get("job/state");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, "tuner state");
}

}  // namespace
}  // namespace smartml
