// Tests for the per-run trace spans: nesting/parenting, RAII guard
// behaviour, and the trace attached to SmartML results (struct field, JSON
// serialization, Report() rendering).
#include <gtest/gtest.h>

#include <string>

#include "src/api/json.h"
#include "src/core/smartml.h"
#include "src/data/synthetic.h"
#include "src/obs/trace.h"

namespace smartml {
namespace {

TEST(TracerTest, NestingRecordsParentAndDepth) {
  Tracer tracer;
  {
    Span outer(&tracer, "tune");
    {
      Span inner(&tracer, "tune/smac");
    }
    Span sibling(&tracer, "tune/refit");
  }
  const std::vector<TraceSpan> spans = tracer.TakeSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "tune");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "tune/smac");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "tune/refit");
  EXPECT_EQ(spans[2].parent, 0);
  EXPECT_EQ(spans[2].depth, 1);
  for (const TraceSpan& span : spans) {
    EXPECT_GE(span.duration_seconds, 0.0);
    EXPECT_GE(span.start_seconds, 0.0);
  }
  // Parent spans contain their children.
  EXPECT_GE(spans[0].start_seconds + spans[0].duration_seconds,
            spans[2].start_seconds + spans[2].duration_seconds);
}

TEST(TracerTest, ExplicitEndIsIdempotent) {
  Tracer tracer;
  {
    Span span(&tracer, "phase");
    span.End();
    span.End();  // Second End() and the destructor must both be no-ops.
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_GT(tracer.spans()[0].duration_seconds, 0.0);
}

TEST(TracerTest, EndingParentClosesOpenChildren) {
  Tracer tracer;
  const int outer = tracer.BeginSpan("outer");
  tracer.BeginSpan("inner");
  tracer.EndSpan(outer);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_GT(tracer.spans()[0].duration_seconds, 0.0);
  EXPECT_GT(tracer.spans()[1].duration_seconds, 0.0);
}

TEST(TracerTest, EndingClosedSpanLeavesSiblingsOpen) {
  // Regression: EndSpan on an already-closed id must not drain the stack.
  Tracer tracer;
  const int root = tracer.BeginSpan("root");
  const int first = tracer.BeginSpan("first");
  tracer.EndSpan(first);
  tracer.BeginSpan("second");
  tracer.EndSpan(first);  // Stale id: "root" and "second" stay open.
  EXPECT_EQ(tracer.spans()[0].duration_seconds, 0.0);
  EXPECT_EQ(tracer.spans()[2].duration_seconds, 0.0);
  tracer.EndSpan(root);
  EXPECT_GT(tracer.spans()[2].duration_seconds, 0.0);
}

TEST(TracerTest, NullTracerSpanIsNoOp) {
  Span span(nullptr, "ignored");
  span.End();  // Must not crash.
}

TEST(TracerTest, RenderTraceIndentsByDepth) {
  Tracer tracer;
  {
    Span outer(&tracer, "a");
    Span inner(&tracer, "a/b");
  }
  const std::string text = RenderTrace(tracer.spans());
  EXPECT_NE(text.find("a "), std::string::npos);
  EXPECT_NE(text.find("  a/b "), std::string::npos);
}

Dataset MakeData() {
  SyntheticSpec spec;
  spec.num_instances = 120;
  spec.num_informative = 4;
  spec.num_classes = 2;
  spec.class_sep = 2.5;
  spec.seed = 91;
  spec.name = "trace_test";
  return GenerateSynthetic(spec);
}

SmartMlOptions FastOptions() {
  SmartMlOptions options;
  options.max_evaluations = 12;
  options.time_budget_seconds = 60;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn", "naive_bayes"};
  options.enable_interpretability = false;
  options.seed = 11;
  return options;
}

TEST(TraceResultTest, RunAttachesSpanTree) {
  SmartML framework(FastOptions());
  auto result = framework.Run(MakeData());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->trace.empty());

  auto find = [&](const std::string& name) -> const TraceSpan* {
    for (const TraceSpan& span : result->trace) {
      if (span.name == name) return &span;
    }
    return nullptr;
  };
  for (const char* phase : {"preprocess", "select", "tune", "output"}) {
    const TraceSpan* span = find(phase);
    ASSERT_NE(span, nullptr) << "missing span " << phase;
    EXPECT_EQ(span->parent, -1);
    EXPECT_GT(span->duration_seconds, 0.0);
  }
  const TraceSpan* algorithm = find("tune/knn");
  ASSERT_NE(algorithm, nullptr);
  EXPECT_EQ(result->trace[static_cast<size_t>(algorithm->parent)].name,
            "tune");
  ASSERT_NE(find("tune/smac"), nullptr);
  ASSERT_NE(find("kb_update"), nullptr);

  // The span tree reaches the serialized result and the text report.
  const std::string json = ResultToJson(*result);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"tune/smac\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(result->Report().find("trace:"), std::string::npos);
}

TEST(TraceResultTest, SelectionOnlyRunStillTraces) {
  SmartMlOptions options = FastOptions();
  options.selection_only = true;
  options.update_kb = false;
  SmartML framework(options);
  auto result = framework.Run(MakeData());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->trace.empty());
  bool found = false;
  for (const TraceSpan& span : result->trace) {
    if (span.name == "preprocess") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace smartml
