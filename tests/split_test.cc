// Tests for stratified splitting and k-fold construction.
#include <gtest/gtest.h>

#include <set>

#include "src/data/split.h"
#include "src/data/synthetic.h"

namespace smartml {
namespace {

Dataset MakeDataset(size_t n, size_t classes) {
  SyntheticSpec spec;
  spec.num_instances = n;
  spec.num_informative = 3;
  spec.num_classes = classes;
  spec.seed = 5;
  return GenerateSynthetic(spec);
}

TEST(SplitTest, PartitionsAreDisjointAndComplete) {
  const Dataset d = MakeDataset(100, 3);
  auto split = StratifiedSplit(d, 0.25, 1);
  ASSERT_TRUE(split.ok());
  std::set<size_t> all(split->train_rows.begin(), split->train_rows.end());
  for (size_t r : split->validation_rows) {
    EXPECT_EQ(all.count(r), 0u);
    all.insert(r);
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, ValidationFractionRespected) {
  const Dataset d = MakeDataset(200, 2);
  auto split = StratifiedSplit(d, 0.25, 2);
  ASSERT_TRUE(split.ok());
  EXPECT_NEAR(static_cast<double>(split->validation_rows.size()), 50.0, 5.0);
}

TEST(SplitTest, StratificationPreservesClassRatios) {
  const Dataset d = MakeDataset(300, 3);
  auto split = StratifiedSplit(d, 0.3, 3);
  ASSERT_TRUE(split.ok());
  const auto total = d.ClassCounts();
  const auto val = split->validation.ClassCounts();
  for (size_t k = 0; k < 3; ++k) {
    const double expected = 0.3 * static_cast<double>(total[k]);
    EXPECT_NEAR(static_cast<double>(val[k]), expected,
                0.25 * expected + 2.0);
  }
}

TEST(SplitTest, EveryClassInBothPartitions) {
  const Dataset d = MakeDataset(120, 4);
  auto split = StratifiedSplit(d, 0.2, 4);
  ASSERT_TRUE(split.ok());
  const auto train_counts = split->train.ClassCounts();
  const auto val_counts = split->validation.ClassCounts();
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_GT(train_counts[k], 0u) << k;
    EXPECT_GT(val_counts[k], 0u) << k;
  }
}

TEST(SplitTest, DeterministicForSeed) {
  const Dataset d = MakeDataset(80, 2);
  auto a = StratifiedSplit(d, 0.25, 9);
  auto b = StratifiedSplit(d, 0.25, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->train_rows, b->train_rows);
  auto c = StratifiedSplit(d, 0.25, 10);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->train_rows, c->train_rows);
}

TEST(SplitTest, RejectsBadFraction) {
  const Dataset d = MakeDataset(50, 2);
  EXPECT_FALSE(StratifiedSplit(d, 0.0, 1).ok());
  EXPECT_FALSE(StratifiedSplit(d, 1.0, 1).ok());
  EXPECT_FALSE(StratifiedSplit(d, -0.5, 1).ok());
}

TEST(FoldsTest, AssignsEveryRow) {
  const Dataset d = MakeDataset(90, 3);
  auto folds = StratifiedFolds(d, 5, 1);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 90u);
  std::vector<int> counts(5, 0);
  for (int f : *folds) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 5);
    counts[static_cast<size_t>(f)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 18, 4);
}

TEST(FoldsTest, FoldsAreClassBalanced) {
  const Dataset d = MakeDataset(200, 2);
  auto folds = StratifiedFolds(d, 4, 3);
  ASSERT_TRUE(folds.ok());
  // Per fold, class ratio should be near the global ratio.
  const auto global = d.ClassCounts();
  const double global_ratio = static_cast<double>(global[0]) /
                              static_cast<double>(d.NumRows());
  for (int f = 0; f < 4; ++f) {
    size_t c0 = 0, total = 0;
    for (size_t r = 0; r < d.NumRows(); ++r) {
      if ((*folds)[r] != f) continue;
      ++total;
      if (d.label(r) == 0) ++c0;
    }
    ASSERT_GT(total, 0u);
    EXPECT_NEAR(static_cast<double>(c0) / static_cast<double>(total),
                global_ratio, 0.1);
  }
}

TEST(FoldsTest, RejectsBadK) {
  const Dataset d = MakeDataset(20, 2);
  EXPECT_FALSE(StratifiedFolds(d, 1, 1).ok());
  EXPECT_FALSE(StratifiedFolds(d, 21, 1).ok());
}

TEST(FoldsTest, MaterializeFoldDisjoint) {
  const Dataset d = MakeDataset(60, 2);
  auto folds = StratifiedFolds(d, 3, 1);
  ASSERT_TRUE(folds.ok());
  const TrainValidationSplit split = MaterializeFold(d, *folds, 1);
  EXPECT_EQ(split.train.NumRows() + split.validation.NumRows(), 60u);
  for (size_t r : split.validation_rows) {
    EXPECT_EQ((*folds)[r], 1);
  }
  for (size_t r : split.train_rows) {
    EXPECT_NE((*folds)[r], 1);
  }
}

}  // namespace
}  // namespace smartml
