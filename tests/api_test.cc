// Tests for the JSON serialization and REST API layers: writer/parser
// correctness, HTTP request parsing, v1 service routing (async runs, the
// error envelope, request ids, removed pre-versioning aliases), and one
// real loopback-socket round trip.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "src/api/job_manager.h"
#include "src/api/json.h"
#include "src/api/rest.h"
#include "src/data/csv.h"
#include "src/data/synthetic.h"
#include "src/metafeatures/metafeatures.h"

namespace smartml {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("hi");
  w.Key("n");
  w.Number(1.5);
  w.Key("i");
  w.Int(-7);
  w.Key("b");
  w.Bool(true);
  w.Key("z");
  w.Null();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            R"({"s":"hi","n":1.5,"i":-7,"b":true,"z":null})");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.BeginArray();
  w.Number(1);
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Number(2);
  w.Number(3);
  w.EndArray();
  w.EndObject();
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), R"([1,{"a":[2,3]}])");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter w;
  w.BeginArray();
  w.Number(std::nan(""));
  w.Number(1.0 / 0.0);
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[null,null]");
}

TEST(JsonTest, ConfigToJson) {
  ParamConfig config;
  config.SetDouble("C", 0.5);
  config.SetInt("k", 3);
  config.SetChoice("kernel", "rbf");
  EXPECT_EQ(ConfigToJson(config), R"({"C":0.5,"k":3,"kernel":"rbf"})");
}

TEST(JsonTest, MetaFeaturesToJsonHasAll25Keys) {
  MetaFeatureVector mf{};
  const std::string json = MetaFeaturesToJson(mf);
  for (const auto& name : MetaFeatureNames()) {
    EXPECT_NE(json.find("\"" + name + "\""), std::string::npos) << name;
  }
}

TEST(JsonTest, ResultToJsonEndToEnd) {
  SyntheticSpec spec;
  spec.num_instances = 90;
  spec.class_sep = 2.5;
  spec.seed = 41;
  spec.name = "json_test";
  SmartMlOptions options;
  options.max_evaluations = 9;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn", "rpart"};
  SmartML framework(options);
  auto result = framework.Run(GenerateSynthetic(spec));
  ASSERT_TRUE(result.ok());
  const std::string json = ResultToJson(*result);
  EXPECT_NE(json.find("\"dataset\":\"json_test\""), std::string::npos);
  EXPECT_NE(json.find("\"best_algorithm\""), std::string::npos);
  EXPECT_NE(json.find("\"importances\""), std::string::npos);
  EXPECT_NE(json.find("\"selected_features\""), std::string::npos);
  // No raw control characters.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(JsonTest, KbToJson) {
  KnowledgeBase kb;
  KbRecord record;
  record.dataset_name = "k\"b";  // Needs escaping.
  KbAlgorithmResult r;
  r.algorithm = "svm";
  r.accuracy = 0.75;
  record.results.push_back(r);
  kb.AddRecord(record);
  const std::string json = KbToJson(kb);
  EXPECT_NE(json.find("\"num_records\":1"), std::string::npos);
  EXPECT_NE(json.find("k\\\"b"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(JsonParseTest, RoundTripsScalarsAndContainers) {
  auto v = ParseJson(R"({"a": [1, -2.5e1, "x\n", true, null], "b": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 5u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[1].number, -25.0);
  EXPECT_EQ(a->array[2].string, "x\n");
  EXPECT_TRUE(a->array[3].boolean);
  EXPECT_TRUE(a->array[4].is_null());
  ASSERT_NE(v->Find("b"), nullptr);
  EXPECT_TRUE(v->Find("b")->is_object());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, UnicodeEscape) {
  auto v = ParseJson(R"("café")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string, "caf\xC3\xA9");
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nan").ok());
}

TEST(JsonParseTest, WriterOutputParses) {
  MetaFeatureVector mf{};
  mf[0] = 42.0;
  auto v = ParseJson(MetaFeaturesToJson(mf));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->object.size(), kNumMetaFeatures);
}

// ---------------------------------------------------------------------------
// HTTP parsing
// ---------------------------------------------------------------------------

TEST(HttpParseTest, BasicGet) {
  auto request = ParseHttpRequest(
      "GET /health HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/health");
  EXPECT_EQ(request->headers.at("host"), "x");
  EXPECT_TRUE(request->body.empty());
}

TEST(HttpParseTest, QueryParameters) {
  auto request = ParseHttpRequest(
      "POST /run?budget=2.5&selection_only=1&name=my%20set HTTP/1.1\r\n"
      "Content-Length: 2\r\n\r\nhi");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->path, "/run");
  EXPECT_EQ(request->query.at("budget"), "2.5");
  EXPECT_EQ(request->query.at("selection_only"), "1");
  EXPECT_EQ(request->query.at("name"), "my set");
  EXPECT_EQ(request->body, "hi");
}

TEST(HttpParseTest, RejectsGarbage) {
  EXPECT_FALSE(ParseHttpRequest("not http").ok());
  EXPECT_FALSE(ParseHttpRequest("GET\r\n\r\n").ok());
}

TEST(HttpParseTest, ResponseSerialization) {
  HttpResponse response;
  response.status = 404;
  response.body = "{}";
  const std::string wire = SerializeHttpResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// ---------------------------------------------------------------------------
// RestService routing (no sockets)
// ---------------------------------------------------------------------------

class RestServiceTest : public testing::Test {
 protected:
  RestServiceTest()
      : framework_(FastOptions()),
        jobs_(&framework_, JobOptions()),
        service_(&framework_, &jobs_) {}

  static SmartMlOptions FastOptions() {
    SmartMlOptions options;
    options.max_evaluations = 9;
    options.cv_folds = 2;
    options.cold_start_algorithms = {"knn", "rpart"};
    return options;
  }

  static JobManagerOptions JobOptions() {
    JobManagerOptions options;
    options.num_workers = 1;
    options.max_pending_jobs = 2;
    return options;
  }

  static std::string DatasetCsv() {
    SyntheticSpec spec;
    spec.num_instances = 80;
    spec.class_sep = 2.5;
    spec.seed = 43;
    return WriteCsvString(GenerateSynthetic(spec));
  }

  HttpResponse Call(const std::string& method, const std::string& path,
                    const std::string& body = "",
                    std::map<std::string, std::string> query = {}) {
    HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = body;
    request.query = std::move(query);
    return service_.Handle(request);
  }

  // Submits one async run, waits for it to finish, and returns its id.
  std::string RunToCompletion(const std::string& csv,
                              std::map<std::string, std::string> query) {
    const HttpResponse response = Call("POST", "/v1/runs", csv, query);
    EXPECT_EQ(response.status, 202) << response.body;
    auto parsed = ParseJson(response.body);
    EXPECT_TRUE(parsed.ok());
    const std::string id = parsed->Find("id")->string;
    auto final_snapshot = jobs_.Wait(id, /*timeout_seconds=*/60.0);
    EXPECT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
    return id;
  }

  SmartML framework_;
  JobManager jobs_;
  RestService service_;
};

TEST_F(RestServiceTest, Health) {
  const HttpResponse response = Call("GET", "/v1/health");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
}

TEST_F(RestServiceTest, Algorithms) {
  const HttpResponse response = Call("GET", "/v1/algorithms");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"svm\""), std::string::npos);
  EXPECT_NE(response.body.find("\"deepboost\""), std::string::npos);
}

TEST_F(RestServiceTest, UnknownRouteIs404) {
  EXPECT_EQ(Call("GET", "/nope").status, 404);
}

TEST_F(RestServiceTest, WrongMethodIs405) {
  EXPECT_EQ(Call("POST", "/v1/health").status, 405);
  EXPECT_EQ(Call("GET", "/v1/batch").status, 405);
  EXPECT_EQ(Call("PUT", "/v1/runs").status, 405);
}

TEST_F(RestServiceTest, MetaFeaturesFromCsv) {
  const HttpResponse response =
      Call("POST", "/v1/metafeatures", DatasetCsv());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"num_instances\":80"), std::string::npos);
}

TEST_F(RestServiceTest, MetaFeaturesBadBodyIs400) {
  EXPECT_EQ(Call("POST", "/v1/metafeatures", "not,csv").status, 400);
}

TEST_F(RestServiceTest, RunEndToEndUpdatesKb) {
  const std::string id =
      RunToCompletion(DatasetCsv(), {{"name", "api_run"}});
  const HttpResponse done = Call("GET", "/v1/runs/" + id);
  ASSERT_EQ(done.status, 200);
  EXPECT_NE(done.body.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(done.body.find("\"best_algorithm\""), std::string::npos);
  EXPECT_NE(done.body.find("\"dataset\":\"api_run\""), std::string::npos);
  // KB grew; /v1/kb reflects it.
  const HttpResponse kb = Call("GET", "/v1/kb");
  EXPECT_NE(kb.body.find("\"num_records\":1"), std::string::npos);
}

TEST_F(RestServiceTest, RunQueryOverridesRestored) {
  const double original_budget = framework_.options().time_budget_seconds;
  RunToCompletion(DatasetCsv(),
                  {{"budget", "1"}, {"evals", "6"}});
  // Per-request overrides live on the job, never on the shared framework.
  EXPECT_DOUBLE_EQ(framework_.options().time_budget_seconds, original_budget);
}

TEST_F(RestServiceTest, SelectionOnlyRun) {
  const std::string id = RunToCompletion(DatasetCsv(),
                                         {{"selection_only", "1"}});
  const HttpResponse done = Call("GET", "/v1/runs/" + id);
  ASSERT_EQ(done.status, 200) << done.body;
  EXPECT_NE(done.body.find("\"best_algorithm\":\"\""), std::string::npos);
}

TEST_F(RestServiceTest, SelectFromMetaFeatures) {
  // Populate the KB first.
  RunToCompletion(DatasetCsv(), {});
  auto dataset = ReadCsvString(DatasetCsv());
  ASSERT_TRUE(dataset.ok());
  auto extracted = ExtractMetaFeatures(*dataset);
  ASSERT_TRUE(extracted.ok());
  const HttpResponse response =
      Call("POST", "/v1/select", MetaFeaturesToJson(*extracted));
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"algorithm\""), std::string::npos);
}

TEST_F(RestServiceTest, SelectBadBodyIs400) {
  EXPECT_EQ(Call("POST", "/v1/select", "1 2 3").status, 400);
}

// ---------------------------------------------------------------------------
// v1 surface: envelope, deprecation, JSON select, async runs
// ---------------------------------------------------------------------------

TEST_F(RestServiceTest, ErrorEnvelopeIsUniform) {
  const HttpResponse response = Call("GET", "/nope");
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("\"error\":{\"code\":\"not_found\""),
            std::string::npos)
      << response.body;
  const HttpResponse bad = Call("POST", "/v1/metafeatures", "not,csv");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("\"error\":{\"code\":\""), std::string::npos)
      << bad.body;
}

TEST_F(RestServiceTest, PreVersioningAliasesAreGone) {
  // The pre-v1 aliases were removed; unversioned paths get the structured
  // 404 envelope pointing at the v1 surface.
  for (const char* path : {"/health", "/algorithms", "/kb", "/run",
                           "/select", "/metafeatures"}) {
    const HttpResponse response = Call("GET", path);
    EXPECT_EQ(response.status, 404) << path;
    EXPECT_NE(response.body.find("\"error\":{\"code\":\"not_found\""),
              std::string::npos)
        << path << " " << response.body;
    EXPECT_NE(response.body.find("/v1"), std::string::npos) << path;
    EXPECT_FALSE(response.headers.count("Deprecation")) << path;
  }
}

TEST_F(RestServiceTest, V1CoreRoutes) {
  EXPECT_EQ(Call("GET", "/v1/health").status, 200);
  EXPECT_EQ(Call("GET", "/v1/algorithms").status, 200);
  EXPECT_EQ(Call("GET", "/v1/kb").status, 200);
  EXPECT_EQ(Call("POST", "/v1/metafeatures", DatasetCsv()).status, 200);
  EXPECT_EQ(Call("GET", "/v1/runs").status, 200);  // The list endpoint.
  EXPECT_EQ(Call("POST", "/v1/health").status, 405);
  EXPECT_EQ(Call("GET", "/v1/nope").status, 404);
}

TEST_F(RestServiceTest, EveryResponseCarriesARequestId) {
  const HttpResponse ok = Call("GET", "/v1/health");
  ASSERT_TRUE(ok.headers.count("X-Request-Id"));
  EXPECT_FALSE(ok.headers.at("X-Request-Id").empty());
  // Client-supplied ids are echoed back, and land in error envelopes.
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/nope";
  request.headers["x-request-id"] = "client-abc-123";
  const HttpResponse err = service_.Handle(request);
  EXPECT_EQ(err.status, 404);
  EXPECT_EQ(err.headers.at("X-Request-Id"), "client-abc-123");
  EXPECT_NE(err.body.find("\"request_id\":\"client-abc-123\""),
            std::string::npos)
      << err.body;
}

TEST_F(RestServiceTest, V1HealthReportsJobPoolState) {
  const HttpResponse response = Call("GET", "/v1/health");
  EXPECT_NE(response.body.find("\"api_version\":\"v1\""), std::string::npos);
  EXPECT_NE(response.body.find("\"jobs\":{\"queued\":0,\"running\":0"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"capacity\":2"), std::string::npos);
}

TEST_F(RestServiceTest, V1SelectAcceptsNamedMetaFeatures) {
  RunToCompletion(DatasetCsv(), {});
  auto dataset = ReadCsvString(DatasetCsv());
  ASSERT_TRUE(dataset.ok());
  auto extracted = ExtractMetaFeatures(*dataset);
  ASSERT_TRUE(extracted.ok());
  // Flat object form.
  const HttpResponse flat =
      Call("POST", "/v1/select", MetaFeaturesToJson(*extracted));
  EXPECT_EQ(flat.status, 200) << flat.body;
  EXPECT_NE(flat.body.find("\"algorithm\""), std::string::npos);
  // Wrapped form.
  const HttpResponse wrapped =
      Call("POST", "/v1/select",
           "{\"meta_features\":" + MetaFeaturesToJson(*extracted) + "}");
  EXPECT_EQ(wrapped.status, 200) << wrapped.body;
  EXPECT_EQ(wrapped.body, flat.body);
}

TEST_F(RestServiceTest, V1SelectRejectsBadBodies) {
  // Not JSON.
  EXPECT_EQ(Call("POST", "/v1/select", "1 2 3").status, 400);
  // Not an object.
  EXPECT_EQ(Call("POST", "/v1/select", "[1,2]").status, 400);
  // Unknown feature name.
  const HttpResponse unknown =
      Call("POST", "/v1/select", R"({"bogus_feature": 1.0})");
  EXPECT_EQ(unknown.status, 400);
  EXPECT_NE(unknown.body.find("bogus_feature"), std::string::npos);
  // Missing features are named in the error.
  const HttpResponse missing =
      Call("POST", "/v1/select", R"({"num_instances": 80})");
  EXPECT_EQ(missing.status, 400);
  EXPECT_NE(missing.body.find("missing meta-features"), std::string::npos);
  EXPECT_NE(missing.body.find("num_classes"), std::string::npos);
  // Non-numeric value.
  EXPECT_EQ(Call("POST", "/v1/select", R"({"num_instances": "80"})").status,
            400);
}

TEST_F(RestServiceTest, V1RunsLifecycle) {
  const HttpResponse submitted =
      Call("POST", "/v1/runs", DatasetCsv(), {{"name", "async_run"}});
  ASSERT_EQ(submitted.status, 202) << submitted.body;
  EXPECT_TRUE(submitted.headers.count("Location"));
  auto parsed = ParseJson(submitted.body);
  ASSERT_TRUE(parsed.ok());
  const std::string id = parsed->Find("id")->string;
  EXPECT_EQ(submitted.headers.at("Location"), "/v1/runs/" + id);

  auto final_snapshot = jobs_.Wait(id, /*timeout_seconds=*/60.0);
  ASSERT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
  EXPECT_EQ(final_snapshot->state, JobState::kDone);

  const HttpResponse done = Call("GET", "/v1/runs/" + id);
  ASSERT_EQ(done.status, 200);
  EXPECT_NE(done.body.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(done.body.find("\"dataset\":\"async_run\""), std::string::npos);
  // Same result fields as a synchronous run, plus phase timings.
  EXPECT_NE(done.body.find("\"best_algorithm\""), std::string::npos);
  EXPECT_NE(done.body.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(done.body.find("\"importances\""), std::string::npos);
  auto doc = ParseJson(done.body);
  ASSERT_TRUE(doc.ok()) << done.body;
  EXPECT_EQ(doc->Find("result")->Find("dataset")->string, "async_run");

  // The completed run was folded into the KB.
  EXPECT_GE(framework_.kb().NumRecords(), 1u);

  // Terminal jobs cannot be cancelled.
  EXPECT_EQ(Call("DELETE", "/v1/runs/" + id).status, 409);
  // Unknown ids are 404s.
  EXPECT_EQ(Call("GET", "/v1/runs/run-999999").status, 404);
  EXPECT_EQ(Call("DELETE", "/v1/runs/run-999999").status, 404);
}

TEST_F(RestServiceTest, V1RunsShedLoadAndCancelQueued) {
  // Occupy the single job worker with a time-boxed run, then fill the queue
  // (capacity 2 = running + queued).
  // budget=3&evals=0 -> time-capped only, so the first job reliably holds
  // the worker while the later submissions arrive.
  const std::map<std::string, std::string> slow = {{"budget", "3"},
                                                   {"evals", "0"}};
  const HttpResponse first = Call("POST", "/v1/runs", DatasetCsv(), slow);
  ASSERT_EQ(first.status, 202) << first.body;
  const HttpResponse second = Call("POST", "/v1/runs", DatasetCsv(), slow);
  ASSERT_EQ(second.status, 202) << second.body;

  const HttpResponse shed = Call("POST", "/v1/runs", DatasetCsv(), slow);
  EXPECT_EQ(shed.status, 429) << shed.body;
  ASSERT_TRUE(shed.headers.count("Retry-After"));
  EXPECT_GE(std::atoi(shed.headers.at("Retry-After").c_str()), 1);
  EXPECT_NE(shed.body.find("\"resource_exhausted\""), std::string::npos);

  // The queued (not yet running) job can be cancelled...
  auto parsed = ParseJson(second.body);
  ASSERT_TRUE(parsed.ok());
  const std::string queued_id = parsed->Find("id")->string;
  const HttpResponse cancelled = Call("DELETE", "/v1/runs/" + queued_id);
  EXPECT_EQ(cancelled.status, 200) << cancelled.body;
  EXPECT_NE(cancelled.body.find("\"state\":\"cancelled\""), std::string::npos);
  // ...and stays cancelled.
  EXPECT_NE(Call("GET", "/v1/runs/" + queued_id)
                .body.find("\"state\":\"cancelled\""),
            std::string::npos);
  // Capacity freed: a new submission is accepted again.
  EXPECT_EQ(Call("POST", "/v1/runs", DatasetCsv()).status, 202);
}

// ---------------------------------------------------------------------------
// Real socket round trip
// ---------------------------------------------------------------------------

TEST(HttpServerTest, LoopbackRoundTrip) {
  SmartMlOptions options;
  options.max_evaluations = 6;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn"};
  SmartML framework(options);
  RestService service(&framework);
  HttpServer server(&service);
  auto port = server.Bind(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  std::thread server_thread([&] { (void)server.Serve(/*max_requests=*/1); });

  // Raw-socket client.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET /v1/health HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  server.Stop();
  server_thread.join();

  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos);
}

}  // namespace
}  // namespace smartml
