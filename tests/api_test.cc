// Tests for the JSON serialization and REST API layers: writer correctness,
// HTTP request parsing, service routing, and one real loopback-socket round
// trip.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <netinet/in.h>
#include <unistd.h>

#include <thread>

#include "src/api/json.h"
#include "src/api/rest.h"
#include "src/data/csv.h"
#include "src/data/synthetic.h"

namespace smartml {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("hi");
  w.Key("n");
  w.Number(1.5);
  w.Key("i");
  w.Int(-7);
  w.Key("b");
  w.Bool(true);
  w.Key("z");
  w.Null();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            R"({"s":"hi","n":1.5,"i":-7,"b":true,"z":null})");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.BeginArray();
  w.Number(1);
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Number(2);
  w.Number(3);
  w.EndArray();
  w.EndObject();
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), R"([1,{"a":[2,3]}])");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter w;
  w.BeginArray();
  w.Number(std::nan(""));
  w.Number(1.0 / 0.0);
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[null,null]");
}

TEST(JsonTest, ConfigToJson) {
  ParamConfig config;
  config.SetDouble("C", 0.5);
  config.SetInt("k", 3);
  config.SetChoice("kernel", "rbf");
  EXPECT_EQ(ConfigToJson(config), R"({"C":0.5,"k":3,"kernel":"rbf"})");
}

TEST(JsonTest, MetaFeaturesToJsonHasAll25Keys) {
  MetaFeatureVector mf{};
  const std::string json = MetaFeaturesToJson(mf);
  for (const auto& name : MetaFeatureNames()) {
    EXPECT_NE(json.find("\"" + name + "\""), std::string::npos) << name;
  }
}

TEST(JsonTest, ResultToJsonEndToEnd) {
  SyntheticSpec spec;
  spec.num_instances = 90;
  spec.class_sep = 2.5;
  spec.seed = 41;
  spec.name = "json_test";
  SmartMlOptions options;
  options.max_evaluations = 9;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn", "rpart"};
  SmartML framework(options);
  auto result = framework.Run(GenerateSynthetic(spec));
  ASSERT_TRUE(result.ok());
  const std::string json = ResultToJson(*result);
  EXPECT_NE(json.find("\"dataset\":\"json_test\""), std::string::npos);
  EXPECT_NE(json.find("\"best_algorithm\""), std::string::npos);
  EXPECT_NE(json.find("\"importances\""), std::string::npos);
  EXPECT_NE(json.find("\"selected_features\""), std::string::npos);
  // No raw control characters.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(JsonTest, KbToJson) {
  KnowledgeBase kb;
  KbRecord record;
  record.dataset_name = "k\"b";  // Needs escaping.
  KbAlgorithmResult r;
  r.algorithm = "svm";
  r.accuracy = 0.75;
  record.results.push_back(r);
  kb.AddRecord(record);
  const std::string json = KbToJson(kb);
  EXPECT_NE(json.find("\"num_records\":1"), std::string::npos);
  EXPECT_NE(json.find("k\\\"b"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP parsing
// ---------------------------------------------------------------------------

TEST(HttpParseTest, BasicGet) {
  auto request = ParseHttpRequest(
      "GET /health HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/health");
  EXPECT_EQ(request->headers.at("host"), "x");
  EXPECT_TRUE(request->body.empty());
}

TEST(HttpParseTest, QueryParameters) {
  auto request = ParseHttpRequest(
      "POST /run?budget=2.5&selection_only=1&name=my%20set HTTP/1.1\r\n"
      "Content-Length: 2\r\n\r\nhi");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->path, "/run");
  EXPECT_EQ(request->query.at("budget"), "2.5");
  EXPECT_EQ(request->query.at("selection_only"), "1");
  EXPECT_EQ(request->query.at("name"), "my set");
  EXPECT_EQ(request->body, "hi");
}

TEST(HttpParseTest, RejectsGarbage) {
  EXPECT_FALSE(ParseHttpRequest("not http").ok());
  EXPECT_FALSE(ParseHttpRequest("GET\r\n\r\n").ok());
}

TEST(HttpParseTest, ResponseSerialization) {
  HttpResponse response;
  response.status = 404;
  response.body = "{}";
  const std::string wire = SerializeHttpResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// ---------------------------------------------------------------------------
// RestService routing (no sockets)
// ---------------------------------------------------------------------------

class RestServiceTest : public testing::Test {
 protected:
  RestServiceTest() : framework_(FastOptions()), service_(&framework_) {}

  static SmartMlOptions FastOptions() {
    SmartMlOptions options;
    options.max_evaluations = 9;
    options.cv_folds = 2;
    options.cold_start_algorithms = {"knn", "rpart"};
    return options;
  }

  static std::string DatasetCsv() {
    SyntheticSpec spec;
    spec.num_instances = 80;
    spec.class_sep = 2.5;
    spec.seed = 43;
    return WriteCsvString(GenerateSynthetic(spec));
  }

  HttpResponse Call(const std::string& method, const std::string& path,
                    const std::string& body = "",
                    std::map<std::string, std::string> query = {}) {
    HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = body;
    request.query = std::move(query);
    return service_.Handle(request);
  }

  SmartML framework_;
  RestService service_;
};

TEST_F(RestServiceTest, Health) {
  const HttpResponse response = Call("GET", "/health");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
}

TEST_F(RestServiceTest, Algorithms) {
  const HttpResponse response = Call("GET", "/algorithms");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"svm\""), std::string::npos);
  EXPECT_NE(response.body.find("\"deepboost\""), std::string::npos);
}

TEST_F(RestServiceTest, UnknownRouteIs404) {
  EXPECT_EQ(Call("GET", "/nope").status, 404);
}

TEST_F(RestServiceTest, WrongMethodIs405) {
  EXPECT_EQ(Call("POST", "/health").status, 405);
  EXPECT_EQ(Call("GET", "/run").status, 405);
}

TEST_F(RestServiceTest, MetaFeaturesFromCsv) {
  const HttpResponse response =
      Call("POST", "/metafeatures", DatasetCsv());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"num_instances\":80"), std::string::npos);
}

TEST_F(RestServiceTest, MetaFeaturesBadBodyIs400) {
  EXPECT_EQ(Call("POST", "/metafeatures", "not,csv").status, 400);
}

TEST_F(RestServiceTest, RunEndToEndUpdatesKb) {
  const HttpResponse response =
      Call("POST", "/run", DatasetCsv(), {{"name", "api_run"}});
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"best_algorithm\""), std::string::npos);
  EXPECT_NE(response.body.find("\"dataset\":\"api_run\""), std::string::npos);
  // KB grew; /kb reflects it.
  const HttpResponse kb = Call("GET", "/kb");
  EXPECT_NE(kb.body.find("\"num_records\":1"), std::string::npos);
}

TEST_F(RestServiceTest, RunQueryOverridesRestored) {
  const double original_budget = framework_.options().time_budget_seconds;
  const HttpResponse response = Call("POST", "/run", DatasetCsv(),
                                     {{"budget", "1"}, {"evals", "6"}});
  EXPECT_EQ(response.status, 200);
  EXPECT_DOUBLE_EQ(framework_.options().time_budget_seconds, original_budget);
}

TEST_F(RestServiceTest, SelectionOnlyRun) {
  const HttpResponse response =
      Call("POST", "/run", DatasetCsv(), {{"selection_only", "1"}});
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"best_algorithm\":\"\""), std::string::npos);
}

TEST_F(RestServiceTest, SelectFromMetaFeatures) {
  // Populate the KB first.
  ASSERT_EQ(Call("POST", "/run", DatasetCsv()).status, 200);
  MetaFeatureVector mf{};
  auto dataset = ReadCsvString(DatasetCsv());
  ASSERT_TRUE(dataset.ok());
  auto extracted = ExtractMetaFeatures(*dataset);
  ASSERT_TRUE(extracted.ok());
  const HttpResponse response =
      Call("POST", "/select", MetaFeaturesToString(*extracted));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"algorithm\""), std::string::npos);
}

TEST_F(RestServiceTest, SelectBadBodyIs400) {
  EXPECT_EQ(Call("POST", "/select", "1 2 3").status, 400);
}

// ---------------------------------------------------------------------------
// Real socket round trip
// ---------------------------------------------------------------------------

TEST(HttpServerTest, LoopbackRoundTrip) {
  SmartMlOptions options;
  options.max_evaluations = 6;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn"};
  SmartML framework(options);
  RestService service(&framework);
  HttpServer server(&service);
  auto port = server.Bind(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  std::thread server_thread([&] { (void)server.Serve(/*max_requests=*/1); });

  // Raw-socket client.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET /health HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  server.Stop();
  server_thread.join();

  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos);
}

}  // namespace
}  // namespace smartml
