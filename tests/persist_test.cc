// Tests for the durability layer: the write-ahead job journal (framing,
// rotation, torn-tail salvage, compaction, fault points), the checkpoint
// stores (crc verification, prefix removal, corruption fault), the
// checkpoint text codec, and Rng state capture/restore.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/rng.h"
#include "src/persist/checkpoint.h"
#include "src/persist/journal.h"
#include "src/tuning/checkpoint_codec.h"
#include "src/tuning/param_space.h"

namespace smartml {
namespace {

class PersistTest : public testing::Test {
 protected:
  void TearDown() override {
    ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
  }

  static std::string TempDir(const std::string& stem) {
    static int counter = 0;
    const std::string dir = testing::TempDir() + "/" + stem + "_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(counter++);
    ::mkdir(dir.c_str(), 0755);
    return dir;
  }

  static std::vector<JournalRecord> ReplayAll(const JobJournal& journal,
                                              ReplayStats* stats = nullptr) {
    std::vector<JournalRecord> records;
    auto result = journal.Replay(
        [&](const JournalRecord& record) { records.push_back(record); });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (stats != nullptr && result.ok()) *stats = *result;
    return records;
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static void WriteFile(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
};

// ---------------------------------------------------------------------------
// Journal basics
// ---------------------------------------------------------------------------

TEST_F(PersistTest, JournalRoundTripsRecordsInOrder) {
  const std::string dir = TempDir("journal_rt");
  auto journal = JobJournal::Open(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  for (int i = 0; i < 10; ++i) {
    JournalRecord record;
    record.type = static_cast<uint8_t>(1 + i % 4);
    record.key = "run-" + std::to_string(i);
    record.payload = std::string(static_cast<size_t>(i * 7), 'x');
    ASSERT_TRUE((*journal)->Append(record).ok());
  }
  const auto records = ReplayAll(**journal);
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].key,
              "run-" + std::to_string(i));
    EXPECT_EQ(records[static_cast<size_t>(i)].payload.size(),
              static_cast<size_t>(i * 7));
  }
}

TEST_F(PersistTest, JournalSurvivesReopen) {
  const std::string dir = TempDir("journal_reopen");
  {
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append({1, "a", "one"}).ok());
    ASSERT_TRUE((*journal)->Append({2, "b", "two"}).ok());
  }
  auto reopened = JobJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->Append({3, "c", "three"}).ok());
  const auto records = ReplayAll(**reopened);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].payload, "one");
  EXPECT_EQ(records[2].payload, "three");
}

TEST_F(PersistTest, JournalRotatesSegments) {
  const std::string dir = TempDir("journal_rotate");
  JournalOptions options;
  options.segment_bytes = 256;  // Tiny, to force rotation.
  auto journal = JobJournal::Open(dir, options);
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*journal)->Append({1, "k", std::string(100, 'p')}).ok());
  }
  EXPECT_GT((*journal)->NumSegments(), 2u);
  ReplayStats stats;
  const auto records = ReplayAll(**journal, &stats);
  EXPECT_EQ(records.size(), 20u);
  EXPECT_EQ(stats.records, 20u);
  EXPECT_GT(stats.segments, 2u);
}

// ---------------------------------------------------------------------------
// Torn-tail salvage
// ---------------------------------------------------------------------------

TEST_F(PersistTest, TornTailSalvagesLongestValidPrefix) {
  const std::string dir = TempDir("journal_torn");
  std::string segment_path;
  {
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*journal)->Append({1, "k" + std::to_string(i), "payload"}).ok());
    }
    segment_path = dir + "/journal-000001.wal";
  }
  const std::string good = ReadFile(segment_path);
  ASSERT_FALSE(good.empty());
  // Truncate at EVERY byte: replay must never crash, and must salvage
  // exactly the records whose frames are complete.
  for (size_t len = 0; len < good.size(); ++len) {
    WriteFile(segment_path, good.substr(0, len));
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok()) << "open failed at truncation " << len;
    const auto records = ReplayAll(**journal);
    EXPECT_LE(records.size(), 5u);
    for (const auto& record : records) {
      EXPECT_EQ(record.payload, "payload") << "at truncation " << len;
    }
  }
  WriteFile(segment_path, good);
}

TEST_F(PersistTest, CorruptMiddleByteStopsAtTornFrame) {
  const std::string dir = TempDir("journal_flip");
  {
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*journal)->Append({1, "key", "0123456789"}).ok());
    }
  }
  const std::string path = dir + "/journal-000001.wal";
  const std::string good = ReadFile(path);
  // Flip each byte in turn: the crc must catch it; salvage keeps only the
  // prefix before the damaged frame and never fabricates records.
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
    WriteFile(path, bad);
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    ReplayStats stats;
    const auto records = ReplayAll(**journal, &stats);
    EXPECT_LE(records.size(), 4u);
    for (const auto& record : records) {
      EXPECT_EQ(record.payload, "0123456789") << "at flip " << pos;
      EXPECT_EQ(record.key, "key") << "at flip " << pos;
    }
  }
  WriteFile(path, good);
}

TEST_F(PersistTest, TornSegmentDoesNotBlockLaterSegments) {
  const std::string dir = TempDir("journal_torn_mid");
  JournalOptions options;
  options.segment_bytes = 16;  // One record per segment.
  {
    auto journal = JobJournal::Open(dir, options);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*journal)->Append({1, "k" + std::to_string(i), "data"}).ok());
    }
    ASSERT_GE((*journal)->NumSegments(), 2u);
  }
  // Tear the FIRST segment's tail; records in later segments must still
  // replay.
  const std::string first = dir + "/journal-000001.wal";
  const std::string good = ReadFile(first);
  ASSERT_GT(good.size(), 4u);
  WriteFile(first, good.substr(0, good.size() - 3));
  auto journal = JobJournal::Open(dir, options);
  ASSERT_TRUE(journal.ok());
  ReplayStats stats;
  const auto records = ReplayAll(**journal, &stats);
  EXPECT_GE(stats.torn_records, 1u);
  bool saw_later = false;
  for (const auto& record : records) {
    if (record.key == "k2") saw_later = true;
  }
  EXPECT_TRUE(saw_later) << "torn first segment swallowed later segments";
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

TEST_F(PersistTest, CompactionDropsAndMutatesRecords) {
  const std::string dir = TempDir("journal_compact");
  JournalOptions options;
  options.segment_bytes = 128;
  auto journal = JobJournal::Open(dir, options);
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*journal)
                    ->Append({static_cast<uint8_t>(i % 2 == 0 ? 1 : 2),
                              "k" + std::to_string(i), "bulky-payload"})
                    .ok());
  }
  const size_t before = (*journal)->NumSegments();
  ASSERT_TRUE((*journal)
                  ->Compact([](JournalRecord* record) {
                    if (record->type == 2) return false;  // Drop.
                    record->payload = "slim";             // Mutate.
                    return true;
                  })
                  .ok());
  EXPECT_LT((*journal)->NumSegments(), before);
  const auto records = ReplayAll(**journal);
  ASSERT_EQ(records.size(), 6u);
  for (const auto& record : records) {
    EXPECT_EQ(record.type, 1);
    EXPECT_EQ(record.payload, "slim");
  }
  // The journal stays appendable after compaction.
  ASSERT_TRUE((*journal)->Append({3, "post", "compact"}).ok());
  EXPECT_EQ(ReplayAll(**journal).size(), 7u);
}

TEST_F(PersistTest, CompactionSurvivesReopen) {
  const std::string dir = TempDir("journal_compact_reopen");
  {
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*journal)->Append({1, "k" + std::to_string(i), "v"}).ok());
    }
    ASSERT_TRUE((*journal)
                    ->Compact([](JournalRecord* record) {
                      return record->key != "k0";
                    })
                    .ok());
  }
  auto reopened = JobJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  const auto records = ReplayAll(**reopened);
  EXPECT_EQ(records.size(), 5u);
  for (const auto& record : records) EXPECT_NE(record.key, "k0");
}

// ---------------------------------------------------------------------------
// Journal fault points
// ---------------------------------------------------------------------------

TEST_F(PersistTest, TornWriteFaultLosesOnlyThatRecord) {
  const std::string dir = TempDir("journal_fault_torn");
  {
    auto journal = JobJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append({1, "before", "ok"}).ok());
    ASSERT_TRUE(
        FaultInjection::Instance().SetSpec("journal_write_torn:1x").ok());
    // The torn append "succeeds" from the writer's view (power loss happens
    // after the ack in the worst case) but leaves half a frame on disk.
    (void)(*journal)->Append({1, "torn", "lost"});
    ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
  }
  // A reopened journal salvages the prefix...
  auto reopened = JobJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  ReplayStats stats;
  const auto salvaged = ReplayAll(**reopened, &stats);
  ASSERT_EQ(salvaged.size(), 1u);
  EXPECT_EQ(salvaged[0].key, "before");
  EXPECT_GE(stats.torn_records, 1u);
  // ...and compaction (which the server runs right after startup replay)
  // rewrites the survivors cleanly, so appends land past the tear.
  ASSERT_TRUE(
      (*reopened)->Compact([](JournalRecord*) { return true; }).ok());
  ASSERT_TRUE((*reopened)->Append({1, "after", "ok"}).ok());
  const auto records = ReplayAll(**reopened);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "before");
  EXPECT_EQ(records[1].key, "after");
}

TEST_F(PersistTest, FsyncFailureSurfacesAsIOError) {
  const std::string dir = TempDir("journal_fault_fsync");
  auto journal = JobJournal::Open(dir);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("journal_fsync_fail").ok());
  const Status status = (*journal)->Append({1, "k", "v"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
  // The journal keeps working once the fault clears.
  EXPECT_TRUE((*journal)->Append({1, "k2", "v2"}).ok());
}

// ---------------------------------------------------------------------------
// Checkpoint stores
// ---------------------------------------------------------------------------

TEST_F(PersistTest, MemoryStoreBasics) {
  MemoryCheckpointStore store;
  EXPECT_EQ(store.Get("missing").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.Put("run-1/smac/knn", "state-a").ok());
  ASSERT_TRUE(store.Put("run-1/smac/svm", "state-b").ok());
  ASSERT_TRUE(store.Put("run-2/smac/knn", "state-c").ok());
  EXPECT_EQ(*store.Get("run-1/smac/knn"), "state-a");
  ASSERT_TRUE(store.RemovePrefix("run-1/").ok());
  EXPECT_EQ(store.Size(), 1u);
  EXPECT_TRUE(store.Get("run-2/smac/knn").ok());
  ASSERT_TRUE(store.Remove("run-2/smac/knn").ok());
  EXPECT_EQ(store.Size(), 0u);
}

TEST_F(PersistTest, FileStoreRoundTripsAndRemovesByPrefix) {
  FileCheckpointStore store(TempDir("ckpt_rt") + "/store");
  const std::string blob(1000, 'z');
  ASSERT_TRUE(store.Put("run-000001/smac/decision_tree", blob).ok());
  ASSERT_TRUE(store.Put("run-000001/smac/knn", "small").ok());
  ASSERT_TRUE(store.Put("run-000002/smac/knn", "other").ok());
  auto loaded = store.Get("run-000001/smac/decision_tree");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, blob);
  ASSERT_TRUE(store.RemovePrefix("run-000001/").ok());
  EXPECT_EQ(store.Get("run-000001/smac/knn").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(store.Get("run-000002/smac/knn").ok());
}

TEST_F(PersistTest, FileStoreSurvivesReopen) {
  const std::string dir = TempDir("ckpt_reopen") + "/store";
  {
    FileCheckpointStore store(dir);
    ASSERT_TRUE(store.Put("run-1/state", "persisted").ok());
  }
  FileCheckpointStore reopened(dir);
  auto loaded = reopened.Get("run-1/state");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "persisted");
}

TEST_F(PersistTest, CorruptCheckpointFailsVerificationNotFoundStaysClean) {
  FileCheckpointStore store(TempDir("ckpt_corrupt") + "/store");
  ASSERT_TRUE(store.Put("run-1/state", "important tuner state").ok());
  ASSERT_TRUE(
      FaultInjection::Instance().SetSpec("checkpoint_corrupt").ok());
  const auto corrupted = store.Get("run-1/state");
  EXPECT_FALSE(corrupted.ok());
  EXPECT_NE(corrupted.status().code(), StatusCode::kNotFound)
      << "corruption must be an error, not silent absence";
  ASSERT_TRUE(FaultInjection::Instance().SetSpec("").ok());
  // The stored blob itself was never damaged; reads recover.
  auto clean = store.Get("run-1/state");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, "important tuner state");
}

TEST_F(PersistTest, SanitizedKeysStayDistinctForStructuredNames) {
  EXPECT_NE(FileCheckpointStore::SanitizeKey("run-000001/smac/knn"),
            FileCheckpointStore::SanitizeKey("run-000001/smac/svm"));
  EXPECT_NE(FileCheckpointStore::SanitizeKey("run-000001/smac/knn"),
            FileCheckpointStore::SanitizeKey("run-000011/smac/knn"));
}

// ---------------------------------------------------------------------------
// Rng state + checkpoint codec
// ---------------------------------------------------------------------------

TEST_F(PersistTest, RngStateRoundTripResumesStream) {
  Rng rng(1234);
  for (int i = 0; i < 100; ++i) (void)rng.Uniform(0.0, 1.0);
  const std::array<uint64_t, 4> saved = rng.State();
  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.Uniform(0.0, 1.0));
  Rng restored(999);  // Different seed; state overrides it entirely.
  restored.SetState(saved);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(restored.Uniform(0.0, 1.0), expected[static_cast<size_t>(i)]);
  }
}

TEST_F(PersistTest, CkptDoubleIsBitExact) {
  const std::vector<double> values = {0.0,     -0.0,   1.0 / 3.0, 1e-308,
                                      1e308,   -125.5, 0.1,       2.2250738585072014e-308};
  for (const double v : values) {
    double parsed = 0.0;
    ASSERT_TRUE(CkptParseDouble(CkptDouble(v), &parsed)) << v;
    EXPECT_EQ(std::memcmp(&parsed, &v, sizeof v), 0) << v;
  }
}

TEST_F(PersistTest, CkptTokenRoundTripsAwkwardStrings) {
  const std::vector<std::string> cases = {
      "", "plain", "with space", "percent%sign", "tab\there",
      "new\nline", std::string(1, '\0') + "nul", "trailing ",
  };
  for (const std::string& original : cases) {
    const std::string token = CkptToken(original);
    // Tokens must be whitespace-free so `istream >>` reads them whole.
    EXPECT_EQ(token.find(' '), std::string::npos);
    EXPECT_EQ(token.find('\n'), std::string::npos);
    std::string decoded;
    ASSERT_TRUE(CkptParseToken(token, &decoded));
    EXPECT_EQ(decoded, original);
  }
}

TEST_F(PersistTest, CkptConfigRoundTripsTypedValues) {
  ParamConfig config;
  config.SetDouble("gamma", 0.0316227766016838);  // Not %.12g-roundtrippable.
  config.SetInt("depth", 17);
  config.SetChoice("kernel", "rbf");
  std::ostringstream out;
  CkptAppendConfig(config, &out);
  std::istringstream in(out.str());
  ParamConfig decoded;
  ASSERT_TRUE(CkptReadConfig(&in, &decoded));
  EXPECT_EQ(decoded.ToString(), config.ToString());
  EXPECT_EQ(decoded.GetDouble("gamma", 0.0), config.GetDouble("gamma", 1.0));
  EXPECT_EQ(decoded.GetInt("depth", 0), 17);
  EXPECT_EQ(decoded.GetChoice("kernel", ""), "rbf");
}

TEST_F(PersistTest, CkptConfigRejectsGarbage) {
  for (const std::string& text :
       {std::string("nope"), std::string("cfg 2\nd x 0x1p0\n"),
        std::string("cfg 99999999999\n"), std::string("cfg 1\nz q 1\n")}) {
    std::istringstream in(text);
    ParamConfig decoded;
    EXPECT_FALSE(CkptReadConfig(&in, &decoded)) << text;
  }
}

}  // namespace
}  // namespace smartml
