// Tests for the run-event subsystem and its SSE serving path: the bounded
// RunEventBuffer (ids, eviction, Wait/Close), the thread-local event scope
// (including propagation through ParallelFor strands), and GET
// /v1/runs/{id}/events over real loopback sockets — streaming after
// keep-alive pipelining, client disconnect mid-stream releasing the buffer,
// and Last-Event-ID resume.
//
// Socket tests are written to be ThreadSanitizer-friendly: modest thread
// counts, and polling loops bounded by deadlines instead of bare sleeps.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/job_manager.h"
#include "src/api/json.h"
#include "src/api/rest.h"
#include "src/common/thread_pool.h"
#include "src/data/csv.h"
#include "src/data/synthetic.h"
#include "src/obs/run_events.h"

namespace smartml {
namespace {

// ---------------------------------------------------------------------------
// RunEventBuffer
// ---------------------------------------------------------------------------

RunEvent Incumbent(double value) {
  RunEvent event;
  event.type = "incumbent";
  event.value = value;
  return event;
}

TEST(RunEventBufferTest, PublishAssignsMonotoneIdsFromOne) {
  RunEventBuffer buffer(8);
  buffer.Publish(Incumbent(0.5));
  buffer.Publish(Incumbent(0.4));
  EXPECT_EQ(buffer.last_id(), 2u);
  const auto events = buffer.After(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[1].id, 2u);
  EXPECT_DOUBLE_EQ(events[1].value, 0.4);
  // After() is a cursor, not a drain: re-reading yields the same events.
  EXPECT_EQ(buffer.After(0).size(), 2u);
  EXPECT_EQ(buffer.After(1).size(), 1u);
  EXPECT_TRUE(buffer.After(2).empty());
}

TEST(RunEventBufferTest, EvictsOldestPastCapacity) {
  RunEventBuffer buffer(3);
  for (int i = 0; i < 5; ++i) buffer.Publish(Incumbent(i));
  EXPECT_EQ(buffer.dropped(), 2u);
  EXPECT_EQ(buffer.oldest_id(), 3u);
  const auto events = buffer.After(0);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().id, 3u);
  EXPECT_EQ(events.back().id, 5u);
}

TEST(RunEventBufferTest, WaitWakesOnPublishAndOnClose) {
  RunEventBuffer buffer(8);
  std::thread publisher([&] { buffer.Publish(Incumbent(0.9)); });
  EXPECT_TRUE(buffer.Wait(0, /*timeout_seconds=*/30.0));
  publisher.join();

  std::thread closer([&] { buffer.Close(); });
  // Nothing beyond id 1 will ever arrive; Close() must still wake us.
  EXPECT_TRUE(buffer.Wait(1, /*timeout_seconds=*/30.0));
  closer.join();
  EXPECT_TRUE(buffer.closed());
}

TEST(RunEventBufferTest, PublishAfterCloseIsDropped) {
  RunEventBuffer buffer(8);
  buffer.Publish(Incumbent(0.9));
  buffer.Close();
  buffer.Publish(Incumbent(0.1));
  EXPECT_EQ(buffer.last_id(), 1u);
  EXPECT_EQ(buffer.After(0).size(), 1u);
}

// ---------------------------------------------------------------------------
// Thread-local event scope
// ---------------------------------------------------------------------------

TEST(RunEventScopeTest, EmitWithoutScopeIsANoOp) {
  EmitPhaseEvent("tuning");  // Must not crash or leak anywhere.
  EXPECT_EQ(CurrentRunEventSink(), nullptr);
}

TEST(RunEventScopeTest, ScopeCapturesEmitsAndRestores) {
  RunEventBuffer buffer(8);
  {
    ScopedRunEventScope scope(&buffer);
    EmitPhaseEvent("selection");
    {
      ScopedRunEventTag tag("knn");
      EmitIncumbentEvent(0.25);
    }
  }
  EXPECT_EQ(CurrentRunEventSink(), nullptr);
  const auto events = buffer.After(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "phase");
  EXPECT_EQ(events[0].phase, "selection");
  EXPECT_EQ(events[1].type, "incumbent");
  EXPECT_EQ(events[1].algorithm, "knn");
  EXPECT_DOUBLE_EQ(events[1].value, 0.25);
}

TEST(RunEventScopeTest, ParallelForStrandsInheritTheSink) {
  RunEventBuffer buffer(64);
  ThreadPool pool(3);
  {
    ScopedRunEventScope scope(&buffer);
    ScopedPoolScope pool_scope(&pool);
    const Status status = ParallelFor(8, [&](size_t i) {
      EmitIncumbentEvent(0.1 * static_cast<double>(i));
      return Status::OK();
    });
    EXPECT_TRUE(status.ok());
  }
  EXPECT_EQ(buffer.After(0).size(), 8u);
}

// ---------------------------------------------------------------------------
// SSE over loopback sockets
// ---------------------------------------------------------------------------

std::string DatasetCsv() {
  SyntheticSpec spec;
  spec.num_instances = 80;
  spec.class_sep = 2.5;
  spec.seed = 53;
  return WriteCsvString(GenerateSynthetic(spec));
}

SmartMlOptions FastOptions() {
  SmartMlOptions options;
  options.max_evaluations = 6;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn"};
  return options;
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string BuildRequest(const std::string& method, const std::string& path,
                         const std::string& body, bool close_connection,
                         const std::string& extra_headers = "") {
  std::string request = method + " " + path +
                        " HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n" + extra_headers;
  if (close_connection) request += "Connection: close\r\n";
  request += "\r\n" + body;
  return request;
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly one Content-Length-framed response from `fd`, consuming
// bytes from `*pending` first (pipelined replies arrive back-to-back).
std::string ReadOneResponse(int fd, std::string* pending) {
  std::string& data = *pending;
  char buffer[4096];
  size_t expected = std::string::npos;
  for (;;) {
    if (expected == std::string::npos) {
      const size_t head_end = data.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        size_t content_length = 0;
        const size_t cl = data.find("Content-Length: ");
        if (cl != std::string::npos && cl < head_end) {
          content_length = static_cast<size_t>(
              std::strtoull(data.c_str() + cl + 16, nullptr, 10));
        }
        expected = head_end + 4 + content_length;
      }
    }
    if (expected != std::string::npos && data.size() >= expected) break;
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  if (expected == std::string::npos || data.size() < expected) {
    std::string all = std::move(data);
    data.clear();
    return all;
  }
  std::string reply = data.substr(0, expected);
  data.erase(0, expected);
  return reply;
}

// One request with `Connection: close`, reads until EOF (which is how SSE
// streams terminate). Returns the raw reply.
std::string Fetch(int port, const std::string& method, const std::string& path,
                  const std::string& body = "",
                  const std::string& extra_headers = "") {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  WriteAll(fd, BuildRequest(method, path, body, /*close_connection=*/true,
                            extra_headers));
  std::string reply;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string BodyOf(const std::string& reply) {
  const size_t split = reply.find("\r\n\r\n");
  return split == std::string::npos ? "" : reply.substr(split + 4);
}

std::string JobIdFrom(const std::string& reply) {
  auto parsed = ParseJson(BodyOf(reply));
  if (!parsed.ok() || !parsed->is_object()) return "";
  const JsonValue* id = parsed->Find("id");
  return id != nullptr && id->is_string() ? id->string : "";
}

// A server + job pool on an ephemeral loopback port, torn down in order.
struct TestServer {
  explicit TestServer(int http_workers = 2, int job_workers = 1,
                      size_t max_jobs = 4)
      : framework(FastOptions()) {
    JobManagerOptions job_options;
    job_options.num_workers = job_workers;
    job_options.max_pending_jobs = max_jobs;
    jobs = std::make_unique<JobManager>(&framework, job_options);
    service = std::make_unique<RestService>(&framework, jobs.get());
    HttpServerOptions server_options;
    server_options.num_workers = http_workers;
    server = std::make_unique<HttpServer>(service.get(), server_options);
    service->set_http_server(server.get());
    auto bound = server->Bind(0);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    port = bound.ok() ? *bound : 0;
    serve_thread = std::thread([this] { serve_status = server->Serve(); });
  }

  ~TestServer() {
    server->Stop();
    if (serve_thread.joinable()) serve_thread.join();
  }

  SmartML framework;
  std::unique_ptr<JobManager> jobs;
  std::unique_ptr<RestService> service;
  std::unique_ptr<HttpServer> server;
  int port = 0;
  Status serve_status;
  std::thread serve_thread;
};

TEST(SseTest, StreamsIncumbentAndTerminalEventsAfterPipelinedRequests) {
  TestServer ts;
  ASSERT_GT(ts.port, 0);

  const std::string submitted =
      Fetch(ts.port, "POST", "/v1/runs?name=sse_run", DatasetCsv());
  ASSERT_NE(submitted.find("202"), std::string::npos) << submitted;
  const std::string id = JobIdFrom(submitted);
  ASSERT_FALSE(id.empty());

  // One connection: two pipelined keep-alive requests, then the SSE request
  // on the same socket. The server must switch the connection over to
  // streaming after serving the framed responses.
  const int fd = ConnectLoopback(ts.port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WriteAll(
      fd, BuildRequest("GET", "/v1/health", "", /*close_connection=*/false) +
              BuildRequest("GET", "/v1/runs/" + id, "",
                           /*close_connection=*/false) +
              BuildRequest("GET", "/v1/runs/" + id + "/events", "",
                           /*close_connection=*/false)));
  std::string pending;
  const std::string health = ReadOneResponse(fd, &pending);
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  const std::string poll = ReadOneResponse(fd, &pending);
  EXPECT_NE(poll.find("HTTP/1.1 200 OK"), std::string::npos) << poll;

  // Everything else on the socket is the SSE stream; it ends with EOF when
  // the run reaches its terminal state.
  std::string stream = std::move(pending);
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    stream.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  EXPECT_NE(stream.find("HTTP/1.1 200 OK"), std::string::npos) << stream;
  EXPECT_NE(stream.find("Content-Type: text/event-stream"), std::string::npos);
  EXPECT_NE(stream.find("Connection: close"), std::string::npos);
  // Lifecycle + pipeline events arrive in order; every completed tuning run
  // carries at least one incumbent improvement before the terminal frame.
  const size_t phase = stream.find("event: phase");
  const size_t incumbent = stream.find("event: incumbent");
  const size_t terminal = stream.find("event: terminal");
  EXPECT_NE(phase, std::string::npos) << stream;
  ASSERT_NE(incumbent, std::string::npos) << stream;
  ASSERT_NE(terminal, std::string::npos) << stream;
  EXPECT_LT(incumbent, terminal);

  const auto final_snapshot = ts.jobs->Wait(id, 60.0);
  ASSERT_TRUE(final_snapshot.ok());
  EXPECT_EQ(final_snapshot->state, JobState::kDone);
}

TEST(SseTest, ClientDisconnectMidStreamReleasesTheBuffer) {
  TestServer ts;
  ASSERT_GT(ts.port, 0);

  // A time-boxed run holds the stream open (evals=0 -> budget-capped only).
  const std::string submitted =
      Fetch(ts.port, "POST", "/v1/runs?budget=3&evals=0", DatasetCsv());
  const std::string id = JobIdFrom(submitted);
  ASSERT_FALSE(id.empty()) << submitted;

  auto buffer = ts.jobs->Events(id);
  ASSERT_TRUE(buffer.ok());
  const long baseline = buffer->use_count();

  const int fd = ConnectLoopback(ts.port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WriteAll(fd, BuildRequest("GET", "/v1/runs/" + id + "/events",
                                        "", /*close_connection=*/true)));
  // Wait until the stream is live (the handler's copy raises the refcount),
  // read the head, then vanish without consuming the rest.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (buffer->use_count() <= baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GT(buffer->use_count(), baseline);
  char head[256];
  (void)::read(fd, head, sizeof(head));
  ::close(fd);

  // The server notices the dead socket on its next write (heartbeats bound
  // the wait) and destroys the streaming response, dropping its reference.
  while (buffer->use_count() > baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(buffer->use_count(), baseline);

  // The run itself is unaffected by the departed listener. Cancelling is
  // best-effort: the budget may already have expired the run.
  (void)ts.jobs->Cancel(id);
  const auto final_snapshot = ts.jobs->Wait(id, 60.0);
  ASSERT_TRUE(final_snapshot.ok());
}

TEST(SseTest, LastEventIdResumesAfterTheCursor) {
  TestServer ts;
  ASSERT_GT(ts.port, 0);

  const std::string submitted =
      Fetch(ts.port, "POST", "/v1/runs", DatasetCsv());
  const std::string id = JobIdFrom(submitted);
  ASSERT_FALSE(id.empty()) << submitted;
  ASSERT_TRUE(ts.jobs->Wait(id, 60.0).ok());

  // First read: the whole closed stream.
  const std::string full =
      Fetch(ts.port, "GET", "/v1/runs/" + id + "/events");
  ASSERT_NE(full.find("id: 1\n"), std::string::npos) << full;
  ASSERT_NE(full.find("id: 3\n"), std::string::npos) << full;

  // Resume from id 2: events 1 and 2 are not replayed.
  const std::string resumed =
      Fetch(ts.port, "GET", "/v1/runs/" + id + "/events", "",
            "Last-Event-ID: 2\r\n");
  EXPECT_EQ(resumed.find("id: 1\n"), std::string::npos) << resumed;
  EXPECT_EQ(resumed.find("id: 2\n"), std::string::npos) << resumed;
  EXPECT_NE(resumed.find("id: 3\n"), std::string::npos) << resumed;

  // ?after= is the header-less equivalent.
  const std::string after =
      Fetch(ts.port, "GET", "/v1/runs/" + id + "/events?after=2");
  EXPECT_EQ(BodyOf(after), BodyOf(resumed));

  // Resuming past the end of a closed stream terminates immediately.
  const std::string drained =
      Fetch(ts.port, "GET", "/v1/runs/" + id + "/events?after=100000");
  EXPECT_NE(drained.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(drained.find("event: incumbent"), std::string::npos) << drained;
}

}  // namespace
}  // namespace smartml
