// Tests for the Dataset container.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/data/dataset.h"

namespace smartml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MakeSmallDataset() {
  Dataset d("toy");
  d.AddNumericFeature("x1", {1.0, 2.0, 3.0, 4.0});
  d.AddCategoricalFeature("color", {0, 1, 0, 2}, {"red", "green", "blue"});
  d.SetLabels({0, 1, 0, 1}, {"neg", "pos"});
  return d;
}

TEST(DatasetTest, BasicShape) {
  const Dataset d = MakeSmallDataset();
  EXPECT_EQ(d.NumRows(), 4u);
  EXPECT_EQ(d.NumFeatures(), 2u);
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_EQ(d.NumNumericFeatures(), 1u);
  EXPECT_EQ(d.NumCategoricalFeatures(), 1u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, LabelsFromStringsFirstAppearanceOrder) {
  Dataset d;
  d.AddNumericFeature("x", {1, 2, 3});
  d.SetLabelsFromStrings({"b", "a", "b"});
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_EQ(d.class_names()[0], "b");
  EXPECT_EQ(d.class_names()[1], "a");
  EXPECT_EQ(d.label(0), 0);
  EXPECT_EQ(d.label(1), 1);
}

TEST(DatasetTest, ValidateCatchesLengthMismatch) {
  Dataset d;
  d.AddNumericFeature("x", {1, 2, 3});
  d.SetLabels({0, 1}, {"a", "b"});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadCategoryCode) {
  Dataset d;
  d.AddCategoricalFeature("c", {0, 5}, {"a", "b"});
  d.SetLabels({0, 0}, {"x"});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadLabel) {
  Dataset d;
  d.AddNumericFeature("x", {1, 2});
  d.SetLabels({0, 7}, {"a", "b"});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, SubsetPreservesSchemaAndClasses) {
  const Dataset d = MakeSmallDataset();
  const Dataset sub = d.Subset({0, 3});
  EXPECT_EQ(sub.NumRows(), 2u);
  EXPECT_EQ(sub.NumFeatures(), 2u);
  EXPECT_EQ(sub.NumClasses(), 2u);  // Dictionary preserved.
  EXPECT_DOUBLE_EQ(sub.feature(0).values[1], 4.0);
  EXPECT_EQ(sub.label(1), 1);
  EXPECT_EQ(sub.feature(1).categories.size(), 3u);
}

TEST(DatasetTest, ClassCounts) {
  const Dataset d = MakeSmallDataset();
  const auto counts = d.ClassCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(DatasetTest, MissingDetection) {
  Dataset d;
  d.AddNumericFeature("x", {1.0, kNaN, 3.0});
  d.AddCategoricalFeature("c", {0, 0, kNaN}, {"a"});
  d.SetLabels({0, 0, 0}, {"y"});
  EXPECT_TRUE(d.HasMissing());
  EXPECT_EQ(d.CountMissing(), 2u);
}

TEST(DatasetTest, NoMissing) {
  EXPECT_FALSE(MakeSmallDataset().HasMissing());
}

TEST(DatasetTest, ToNumericMatrixOneHot) {
  const Dataset d = MakeSmallDataset();
  const Matrix x = d.ToNumericMatrix();
  EXPECT_EQ(x.rows(), 4u);
  EXPECT_EQ(x.cols(), 4u);  // 1 numeric + 3 one-hot.
  // Row 3: x1=4, color=blue(2).
  EXPECT_DOUBLE_EQ(x(3, 0), 4.0);
  EXPECT_DOUBLE_EQ(x(3, 1), 0.0);
  EXPECT_DOUBLE_EQ(x(3, 2), 0.0);
  EXPECT_DOUBLE_EQ(x(3, 3), 1.0);
}

TEST(DatasetTest, ToNumericMatrixImputesMean) {
  Dataset d;
  d.AddNumericFeature("x", {1.0, kNaN, 3.0});
  d.SetLabels({0, 0, 0}, {"y"});
  const Matrix x = d.ToNumericMatrix();
  EXPECT_DOUBLE_EQ(x(1, 0), 2.0);  // Mean of 1 and 3.
}

TEST(DatasetTest, ToNumericMatrixMissingCategoricalAllZero) {
  Dataset d;
  d.AddCategoricalFeature("c", {0, kNaN}, {"a", "b"});
  d.SetLabels({0, 0}, {"y"});
  const Matrix x = d.ToNumericMatrix();
  EXPECT_DOUBLE_EQ(x(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(x(1, 1), 0.0);
}

TEST(DatasetTest, NumericMatrixColumnNames) {
  const Dataset d = MakeSmallDataset();
  const auto names = d.NumericMatrixColumnNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "x1");
  EXPECT_EQ(names[1], "color=red");
  EXPECT_EQ(names[3], "color=blue");
}

TEST(DatasetTest, ToRawMatrixKeepsCodesAndNaN) {
  Dataset d;
  d.AddNumericFeature("x", {1.0, kNaN});
  d.AddCategoricalFeature("c", {1, 0}, {"a", "b"});
  d.SetLabels({0, 0}, {"y"});
  const Matrix x = d.ToRawMatrix();
  EXPECT_EQ(x.cols(), 2u);
  EXPECT_TRUE(std::isnan(x(1, 0)));
  EXPECT_DOUBLE_EQ(x(0, 1), 1.0);
}

TEST(DatasetTest, RemoveFeature) {
  Dataset d = MakeSmallDataset();
  EXPECT_TRUE(d.RemoveFeature(0).ok());
  EXPECT_EQ(d.NumFeatures(), 1u);
  EXPECT_EQ(d.feature(0).name, "color");
}

// Regression: an out-of-range index used to hit a bare assert that NDEBUG
// compiled out, erasing past the end of the column vector in release
// builds. It is now a reported error.
TEST(DatasetTest, RemoveFeatureRejectsOutOfRange) {
  Dataset d = MakeSmallDataset();
  EXPECT_FALSE(d.RemoveFeature(2).ok());
  EXPECT_FALSE(d.RemoveFeature(999).ok());
  EXPECT_EQ(d.NumFeatures(), 2u);  // Nothing was erased.
}

// Regression: a categorical code outside the dictionary (or a non-integral
// one) used to be silently one-hot encoded as all zeros — i.e. treated as
// missing. Corrupt codes now fail loudly.
TEST(DatasetTest, ToNumericMatrixThrowsOnCorruptCategoricalCode) {
  Dataset d = MakeSmallDataset();
  d.mutable_feature(1).values[0] = 7.0;  // Dictionary has 3 entries.
  EXPECT_THROW(d.ToNumericMatrix(), std::runtime_error);

  Dataset d2 = MakeSmallDataset();
  d2.mutable_feature(1).values[2] = 1.5;  // Non-integral code.
  EXPECT_THROW(d2.ToNumericMatrix(), std::runtime_error);
}

TEST(DatasetTest, BinnedLosslessSmallColumn) {
  Dataset d;
  d.AddNumericFeature("x", {3.0, 1.0, 2.0, 2.0, kNaN});
  d.AddCategoricalFeature("c", {0, 1, 0, 2, kNaN}, {"a", "b", "c"});
  d.SetLabels({0, 0, 0, 0, 0}, {"y"});
  const auto binned = d.Binned();
  ASSERT_EQ(binned->num_features(), 2u);
  EXPECT_EQ(binned->num_rows(), 5u);
  EXPECT_TRUE(binned->histogram_safe());

  const BinnedColumn& x = binned->column(0);
  EXPECT_FALSE(x.categorical);
  EXPECT_TRUE(x.lossless);
  ASSERT_EQ(x.num_bins, 3u);
  // Codes follow sorted value order; missing gets the sentinel.
  const std::vector<uint8_t> want = {2, 0, 1, 1, BinnedColumns::kMissingBin};
  EXPECT_EQ(x.codes, want);
  ASSERT_EQ(x.thresholds.size(), 2u);
  EXPECT_DOUBLE_EQ(x.thresholds[0], 1.5);
  EXPECT_DOUBLE_EQ(x.thresholds[1], 2.5);

  const BinnedColumn& c = binned->column(1);
  EXPECT_TRUE(c.categorical);
  EXPECT_EQ(c.num_bins, 3u);
  EXPECT_EQ(c.cardinality, 3u);
  const std::vector<uint8_t> want_c = {0, 1, 0, 2, BinnedColumns::kMissingBin};
  EXPECT_EQ(c.codes, want_c);
}

TEST(DatasetTest, BinnedQuantileColumnRespectsThresholdOrder) {
  Dataset d;
  std::vector<double> values(1000);
  // 1000 distinct values force true quantile binning (> 255 distinct).
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 7919) % 1000);
  }
  d.AddNumericFeature("x", values);
  d.SetLabels(std::vector<int>(1000, 0), {"y"});
  const auto binned = d.Binned();
  const BinnedColumn& col = binned->column(0);
  EXPECT_FALSE(col.lossless);
  EXPECT_GT(col.num_bins, 1u);
  EXPECT_LE(col.num_bins, BinnedColumns::kMaxBins);
  ASSERT_EQ(col.thresholds.size(), static_cast<size_t>(col.num_bins) - 1);
  for (size_t b = 1; b < col.thresholds.size(); ++b) {
    EXPECT_LT(col.thresholds[b - 1], col.thresholds[b]);
  }
  // The binning contract: value <= thresholds[b] exactly when code <= b.
  for (size_t r = 0; r < values.size(); ++r) {
    for (size_t b = 0; b < col.thresholds.size(); ++b) {
      EXPECT_EQ(values[r] <= col.thresholds[b], col.codes[r] <= b)
          << "row " << r << " bin " << b;
    }
  }
}

TEST(DatasetTest, BinnedViewIsCachedAndInvalidatedByMutation) {
  Dataset d = MakeSmallDataset();
  const auto first = d.Binned();
  EXPECT_EQ(first.get(), d.Binned().get());  // Cached.

  d.AddNumericFeature("x2", {5.0, 6.0, 7.0, 8.0});
  const auto second = d.Binned();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(second->num_features(), 3u);
  // The old view stays valid for holders that captured it (shared, immutable).
  EXPECT_EQ(first->num_features(), 2u);

  d.mutable_feature(0).values[0] = 99.0;  // Mutation drops the cache too.
  const auto third = d.Binned();
  EXPECT_NE(second.get(), third.get());
}

}  // namespace
}  // namespace smartml
