// Tests for the Dataset container.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/data/dataset.h"

namespace smartml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MakeSmallDataset() {
  Dataset d("toy");
  d.AddNumericFeature("x1", {1.0, 2.0, 3.0, 4.0});
  d.AddCategoricalFeature("color", {0, 1, 0, 2}, {"red", "green", "blue"});
  d.SetLabels({0, 1, 0, 1}, {"neg", "pos"});
  return d;
}

TEST(DatasetTest, BasicShape) {
  const Dataset d = MakeSmallDataset();
  EXPECT_EQ(d.NumRows(), 4u);
  EXPECT_EQ(d.NumFeatures(), 2u);
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_EQ(d.NumNumericFeatures(), 1u);
  EXPECT_EQ(d.NumCategoricalFeatures(), 1u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, LabelsFromStringsFirstAppearanceOrder) {
  Dataset d;
  d.AddNumericFeature("x", {1, 2, 3});
  d.SetLabelsFromStrings({"b", "a", "b"});
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_EQ(d.class_names()[0], "b");
  EXPECT_EQ(d.class_names()[1], "a");
  EXPECT_EQ(d.label(0), 0);
  EXPECT_EQ(d.label(1), 1);
}

TEST(DatasetTest, ValidateCatchesLengthMismatch) {
  Dataset d;
  d.AddNumericFeature("x", {1, 2, 3});
  d.SetLabels({0, 1}, {"a", "b"});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadCategoryCode) {
  Dataset d;
  d.AddCategoricalFeature("c", {0, 5}, {"a", "b"});
  d.SetLabels({0, 0}, {"x"});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadLabel) {
  Dataset d;
  d.AddNumericFeature("x", {1, 2});
  d.SetLabels({0, 7}, {"a", "b"});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, SubsetPreservesSchemaAndClasses) {
  const Dataset d = MakeSmallDataset();
  const Dataset sub = d.Subset({0, 3});
  EXPECT_EQ(sub.NumRows(), 2u);
  EXPECT_EQ(sub.NumFeatures(), 2u);
  EXPECT_EQ(sub.NumClasses(), 2u);  // Dictionary preserved.
  EXPECT_DOUBLE_EQ(sub.feature(0).values[1], 4.0);
  EXPECT_EQ(sub.label(1), 1);
  EXPECT_EQ(sub.feature(1).categories.size(), 3u);
}

TEST(DatasetTest, ClassCounts) {
  const Dataset d = MakeSmallDataset();
  const auto counts = d.ClassCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(DatasetTest, MissingDetection) {
  Dataset d;
  d.AddNumericFeature("x", {1.0, kNaN, 3.0});
  d.AddCategoricalFeature("c", {0, 0, kNaN}, {"a"});
  d.SetLabels({0, 0, 0}, {"y"});
  EXPECT_TRUE(d.HasMissing());
  EXPECT_EQ(d.CountMissing(), 2u);
}

TEST(DatasetTest, NoMissing) {
  EXPECT_FALSE(MakeSmallDataset().HasMissing());
}

TEST(DatasetTest, ToNumericMatrixOneHot) {
  const Dataset d = MakeSmallDataset();
  const Matrix x = d.ToNumericMatrix();
  EXPECT_EQ(x.rows(), 4u);
  EXPECT_EQ(x.cols(), 4u);  // 1 numeric + 3 one-hot.
  // Row 3: x1=4, color=blue(2).
  EXPECT_DOUBLE_EQ(x(3, 0), 4.0);
  EXPECT_DOUBLE_EQ(x(3, 1), 0.0);
  EXPECT_DOUBLE_EQ(x(3, 2), 0.0);
  EXPECT_DOUBLE_EQ(x(3, 3), 1.0);
}

TEST(DatasetTest, ToNumericMatrixImputesMean) {
  Dataset d;
  d.AddNumericFeature("x", {1.0, kNaN, 3.0});
  d.SetLabels({0, 0, 0}, {"y"});
  const Matrix x = d.ToNumericMatrix();
  EXPECT_DOUBLE_EQ(x(1, 0), 2.0);  // Mean of 1 and 3.
}

TEST(DatasetTest, ToNumericMatrixMissingCategoricalAllZero) {
  Dataset d;
  d.AddCategoricalFeature("c", {0, kNaN}, {"a", "b"});
  d.SetLabels({0, 0}, {"y"});
  const Matrix x = d.ToNumericMatrix();
  EXPECT_DOUBLE_EQ(x(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(x(1, 1), 0.0);
}

TEST(DatasetTest, NumericMatrixColumnNames) {
  const Dataset d = MakeSmallDataset();
  const auto names = d.NumericMatrixColumnNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "x1");
  EXPECT_EQ(names[1], "color=red");
  EXPECT_EQ(names[3], "color=blue");
}

TEST(DatasetTest, ToRawMatrixKeepsCodesAndNaN) {
  Dataset d;
  d.AddNumericFeature("x", {1.0, kNaN});
  d.AddCategoricalFeature("c", {1, 0}, {"a", "b"});
  d.SetLabels({0, 0}, {"y"});
  const Matrix x = d.ToRawMatrix();
  EXPECT_EQ(x.cols(), 2u);
  EXPECT_TRUE(std::isnan(x(1, 0)));
  EXPECT_DOUBLE_EQ(x(0, 1), 1.0);
}

TEST(DatasetTest, RemoveFeature) {
  Dataset d = MakeSmallDataset();
  d.RemoveFeature(0);
  EXPECT_EQ(d.NumFeatures(), 1u);
  EXPECT_EQ(d.feature(0).name, "color");
}

}  // namespace
}  // namespace smartml
