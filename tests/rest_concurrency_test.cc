// Concurrency tests for the serving core: the worker-pool HttpServer stays
// responsive (e.g. /v1/select, /v1/health) while a /v1/runs experiment is
// executing on the job pool, Stop() drains in-flight work cleanly, and a
// queued job can be cancelled over the wire.
//
// These tests use real loopback sockets and are written to be
// ThreadSanitizer-friendly (see SMARTML_SANITIZE in the top-level
// CMakeLists.txt): modest thread counts, no sleeps as synchronization.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/job_manager.h"
#include "src/api/json.h"
#include "src/api/rest.h"
#include "src/data/csv.h"
#include "src/data/synthetic.h"
#include "src/metafeatures/metafeatures.h"

namespace smartml {
namespace {

std::string DatasetCsv() {
  SyntheticSpec spec;
  spec.num_instances = 80;
  spec.class_sep = 2.5;
  spec.seed = 47;
  return WriteCsvString(GenerateSynthetic(spec));
}

SmartMlOptions FastOptions() {
  SmartMlOptions options;
  options.max_evaluations = 6;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn"};
  return options;
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string BuildRequest(const std::string& method, const std::string& path,
                         const std::string& body, bool close_connection) {
  std::string request = method + " " + path +
                        " HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n";
  if (close_connection) request += "Connection: close\r\n";
  request += "\r\n" + body;
  return request;
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly one Content-Length-framed response from `fd`, consuming
// bytes from `*pending` first (pipelined replies arrive back-to-back).
std::string ReadOneResponse(int fd, std::string* pending) {
  std::string& data = *pending;
  char buffer[4096];
  size_t expected = std::string::npos;
  for (;;) {
    if (expected == std::string::npos) {
      const size_t head_end = data.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        size_t content_length = 0;
        const size_t cl = data.find("Content-Length: ");
        if (cl != std::string::npos && cl < head_end) {
          content_length = static_cast<size_t>(
              std::strtoull(data.c_str() + cl + 16, nullptr, 10));
        }
        expected = head_end + 4 + content_length;
      }
    }
    if (expected != std::string::npos && data.size() >= expected) break;
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  if (expected == std::string::npos || data.size() < expected) {
    std::string all = std::move(data);
    data.clear();
    return all;
  }
  std::string reply = data.substr(0, expected);
  data.erase(0, expected);
  return reply;
}

// Minimal blocking HTTP/1.1 client: one request with `Connection: close`,
// reads until EOF. Returns the raw reply.
std::string Fetch(int port, const std::string& method, const std::string& path,
                  const std::string& body = "") {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  WriteAll(fd, BuildRequest(method, path, body, /*close_connection=*/true));
  std::string reply;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string BodyOf(const std::string& reply) {
  const size_t split = reply.find("\r\n\r\n");
  return split == std::string::npos ? "" : reply.substr(split + 4);
}

std::string JobIdFrom(const std::string& reply) {
  auto parsed = ParseJson(BodyOf(reply));
  if (!parsed.ok() || !parsed->is_object()) return "";
  const JsonValue* id = parsed->Find("id");
  return id != nullptr && id->is_string() ? id->string : "";
}

// A server + job pool on an ephemeral loopback port, torn down in order.
struct TestServer {
  explicit TestServer(int http_workers = 2, int job_workers = 1,
                      size_t max_jobs = 2)
      : framework(FastOptions()) {
    JobManagerOptions job_options;
    job_options.num_workers = job_workers;
    job_options.max_pending_jobs = max_jobs;
    jobs = std::make_unique<JobManager>(&framework, job_options);
    service = std::make_unique<RestService>(&framework, jobs.get());
    HttpServerOptions server_options;
    server_options.num_workers = http_workers;
    server = std::make_unique<HttpServer>(service.get(), server_options);
    service->set_http_server(server.get());
    auto bound = server->Bind(0);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    port = bound.ok() ? *bound : 0;
    serve_thread = std::thread([this] { serve_status = server->Serve(); });
  }

  ~TestServer() {
    server->Stop();
    if (serve_thread.joinable()) serve_thread.join();
  }

  SmartML framework;
  std::unique_ptr<JobManager> jobs;
  std::unique_ptr<RestService> service;
  std::unique_ptr<HttpServer> server;
  int port = 0;
  Status serve_status;
  std::thread serve_thread;
};

TEST(RestConcurrencyTest, SelectAnswersWhileRunIsInFlight) {
  TestServer ts;
  ASSERT_GT(ts.port, 0);

  // Meta-features for /v1/select, computed locally.
  auto dataset = ReadCsvString(DatasetCsv());
  ASSERT_TRUE(dataset.ok());
  auto mf = ExtractMetaFeatures(*dataset);
  ASSERT_TRUE(mf.ok());
  const std::string select_body = MetaFeaturesToJson(*mf);

  // Hold the single job worker with a time-boxed experiment.
  const std::string submitted =
      Fetch(ts.port, "POST", "/v1/runs?budget=3&evals=0", DatasetCsv());
  ASSERT_NE(submitted.find("202"), std::string::npos) << submitted;
  const std::string id = JobIdFrom(submitted);
  ASSERT_FALSE(id.empty()) << submitted;

  // While the job runs, the HTTP worker pool keeps answering.
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 3;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::string reply =
            c % 2 == 0 ? Fetch(ts.port, "POST", "/v1/select", select_body)
                       : Fetch(ts.port, "GET", "/v1/health");
        if (reply.find("HTTP/1.1 200 OK") != std::string::npos) ++ok_count;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequestsPerClient);

  // All of that completed while the experiment was still queued/running.
  const std::string mid = Fetch(ts.port, "GET", "/v1/runs/" + id);
  EXPECT_TRUE(mid.find("\"state\":\"queued\"") != std::string::npos ||
              mid.find("\"state\":\"running\"") != std::string::npos)
      << mid;

  // And the job itself still completes.
  auto done = ts.jobs->Wait(id, /*timeout_seconds=*/60.0);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done->state, JobState::kDone) << done->error.ToString();
  const std::string final_reply = Fetch(ts.port, "GET", "/v1/runs/" + id);
  EXPECT_NE(final_reply.find("\"best_algorithm\""), std::string::npos);
}

TEST(RestConcurrencyTest, StopDrainsCleanly) {
  std::atomic<int> ok_count{0};
  int64_t served = 0;
  Status serve_status;
  {
    TestServer ts(/*http_workers=*/2);
    ASSERT_GT(ts.port, 0);
    constexpr int kClients = 6;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        const std::string reply = Fetch(ts.port, "GET", "/v1/health");
        if (reply.find("\"status\":\"ok\"") != std::string::npos) ++ok_count;
      });
    }
    for (auto& t : clients) t.join();
    ts.server->Stop();
    ts.serve_thread.join();
    served = ts.server->requests_served();
    serve_status = ts.serve_status;
    // A second Stop() (from the dtor) is a harmless no-op.
  }
  EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  EXPECT_EQ(ok_count.load(), 6);
  EXPECT_GE(served, 6);
}

TEST(RestConcurrencyTest, PipelinedKeepAliveRequestsShareOneConnection) {
  TestServer ts;
  ASSERT_GT(ts.port, 0);

  const int fd = ConnectLoopback(ts.port);
  ASSERT_GE(fd, 0);
  // Three pipelined requests written back-to-back before reading anything;
  // only the last asks the server to close.
  constexpr int kPipelined = 3;
  std::string wire;
  for (int i = 0; i < kPipelined; ++i) {
    wire += BuildRequest("GET", "/v1/health", "",
                         /*close_connection=*/i == kPipelined - 1);
  }
  ASSERT_TRUE(WriteAll(fd, wire));

  std::string pending;
  for (int i = 0; i < kPipelined; ++i) {
    const std::string reply = ReadOneResponse(fd, &pending);
    EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos)
        << "response " << i << ": " << reply;
    EXPECT_NE(reply.find(i == kPipelined - 1 ? "Connection: close"
                                             : "Connection: keep-alive"),
              std::string::npos)
        << "response " << i << ": " << reply;
    EXPECT_NE(reply.find("\"status\""), std::string::npos);
  }
  ::close(fd);
  // All three were responses on the same connection.
  EXPECT_GE(ts.server->requests_served(), kPipelined);
}

TEST(RestConcurrencyTest, SequentialKeepAliveReuseAndHonoredClose) {
  TestServer ts;
  ASSERT_GT(ts.port, 0);

  const int fd = ConnectLoopback(ts.port);
  ASSERT_GE(fd, 0);
  std::string pending;
  // Request -> full response -> next request on the same socket.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(WriteAll(
        fd, BuildRequest("GET", "/v1/health", "", /*close_connection=*/false)));
    const std::string reply = ReadOneResponse(fd, &pending);
    EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
    EXPECT_NE(reply.find("Connection: keep-alive"), std::string::npos) << reply;
  }
  // Connection: close is honoured: the response says close and the server
  // actually closes (read returns EOF afterwards).
  ASSERT_TRUE(WriteAll(
      fd, BuildRequest("GET", "/v1/health", "", /*close_connection=*/true)));
  const std::string last = ReadOneResponse(fd, &pending);
  EXPECT_NE(last.find("Connection: close"), std::string::npos) << last;
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);  // EOF, not a hang.
  ::close(fd);
}

TEST(RestConcurrencyTest, CancelQueuedJobOverSocket) {
  TestServer ts(/*http_workers=*/2, /*job_workers=*/1, /*max_jobs=*/2);
  ASSERT_GT(ts.port, 0);

  const std::string running =
      Fetch(ts.port, "POST", "/v1/runs?budget=3&evals=0", DatasetCsv());
  ASSERT_NE(running.find("202"), std::string::npos) << running;
  const std::string queued =
      Fetch(ts.port, "POST", "/v1/runs?budget=3&evals=0", DatasetCsv());
  ASSERT_NE(queued.find("202"), std::string::npos) << queued;
  const std::string queued_id = JobIdFrom(queued);
  ASSERT_FALSE(queued_id.empty());

  const std::string cancelled =
      Fetch(ts.port, "DELETE", "/v1/runs/" + queued_id);
  EXPECT_NE(cancelled.find("HTTP/1.1 200 OK"), std::string::npos) << cancelled;
  EXPECT_NE(cancelled.find("\"state\":\"cancelled\""), std::string::npos);

  // Cancelled jobs never transition again, even once the worker frees up.
  const std::string after = Fetch(ts.port, "GET", "/v1/runs/" + queued_id);
  EXPECT_NE(after.find("\"state\":\"cancelled\""), std::string::npos) << after;
}

}  // namespace
}  // namespace smartml
