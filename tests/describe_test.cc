// Tests for the dataset profiler.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/describe.h"

namespace smartml {
namespace {

Dataset MakeDataset() {
  Dataset d("profiled");
  d.AddNumericFeature("num", {1.0, 2.0, 3.0, std::nan("")});
  d.AddCategoricalFeature("cat", {0, 0, 1, 0}, {"a", "b"});
  d.SetLabels({0, 1, 0, 1}, {"no", "yes"});
  return d;
}

TEST(DescribeTest, NumericProfile) {
  const auto profiles = ProfileColumns(MakeDataset());
  ASSERT_EQ(profiles.size(), 2u);
  const ColumnProfile& p = profiles[0];
  EXPECT_FALSE(p.categorical);
  EXPECT_DOUBLE_EQ(p.min, 1.0);
  EXPECT_DOUBLE_EQ(p.max, 3.0);
  EXPECT_DOUBLE_EQ(p.mean, 2.0);
  EXPECT_NEAR(p.stddev, std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_EQ(p.missing, 1u);
}

TEST(DescribeTest, CategoricalProfile) {
  const auto profiles = ProfileColumns(MakeDataset());
  const ColumnProfile& p = profiles[1];
  EXPECT_TRUE(p.categorical);
  EXPECT_EQ(p.num_categories, 2u);
  EXPECT_EQ(p.mode, "a");
  EXPECT_DOUBLE_EQ(p.mode_fraction, 0.75);
  EXPECT_EQ(p.missing, 0u);
}

TEST(DescribeTest, ReportContainsKeyFacts) {
  const std::string report = DescribeDataset(MakeDataset());
  EXPECT_NE(report.find("profiled"), std::string::npos);
  EXPECT_NE(report.find("4 rows x 2 features"), std::string::npos);
  EXPECT_NE(report.find("no=2"), std::string::npos);
  EXPECT_NE(report.find("yes=2"), std::string::npos);
  EXPECT_NE(report.find("num"), std::string::npos);
  EXPECT_NE(report.find("cat"), std::string::npos);
}

TEST(DescribeTest, AllMissingColumnIsSafe) {
  Dataset d;
  d.AddNumericFeature("empty",
                      {std::nan(""), std::nan(""), std::nan("")});
  d.SetLabels({0, 0, 1}, {"a", "b"});
  const auto profiles = ProfileColumns(d);
  EXPECT_EQ(profiles[0].missing, 3u);
  EXPECT_DOUBLE_EQ(profiles[0].min, 0.0);
  const std::string report = DescribeDataset(d);
  EXPECT_FALSE(report.empty());
}

}  // namespace
}  // namespace smartml
