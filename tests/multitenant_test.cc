// Tests for multi-tenant serving: fair-share weighted round-robin dispatch
// across tenants, per-tenant quotas shedding with 429 semantics, priority
// classes within a tenant, single-scheduler-pass batch admission, and the
// end-to-end acceptance path over real loopback sockets (two tenants with
// unequal quotas submitting batches, observing dispatch order, quota 429s
// with Retry-After, and at least one incumbent SSE event per run).
//
// Written to be ThreadSanitizer-friendly: modest thread counts, and the
// only timing assumption is that submitting a handful of requests takes
// less than a deliberately time-boxed blocker run.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/api/job_manager.h"
#include "src/api/json.h"
#include "src/api/rest.h"
#include "src/data/csv.h"
#include "src/data/synthetic.h"
#include "src/obs/metrics.h"

namespace smartml {
namespace {

std::string DatasetCsv(uint64_t seed = 59) {
  SyntheticSpec spec;
  spec.num_instances = 80;
  spec.class_sep = 2.5;
  spec.seed = seed;
  return WriteCsvString(GenerateSynthetic(spec));
}

SmartMlOptions FastOptions() {
  SmartMlOptions options;
  options.max_evaluations = 6;
  options.cv_folds = 2;
  options.cold_start_algorithms = {"knn"};
  return options;
}

// A quick run: selection only, no tuning.
JobRequest FastRequest(const std::string& tenant,
                       JobPriority priority = JobPriority::kNormal) {
  JobRequest request;
  auto dataset = ReadCsvString(DatasetCsv());
  EXPECT_TRUE(dataset.ok());
  request.dataset = *dataset;
  request.run_options = FastOptions();
  request.run_options.selection_only = true;
  request.tenant = tenant;
  request.priority = priority;
  return request;
}

// A run that reliably occupies a worker while the test submits more jobs:
// time-boxed tuning with no evaluation cap.
JobRequest BlockerRequest(double budget_seconds) {
  JobRequest request = FastRequest(kDefaultTenant);
  request.run_options.selection_only = false;
  request.run_options.time_budget_seconds = budget_seconds;
  request.run_options.max_evaluations = 0;
  return request;
}

// Blocks until `id` has left the queue. The blocker pattern only pins the
// worker once the blocker job is actually running; submitting competing
// jobs before that point lets the dispatcher pick one of them first.
void WaitUntilRunning(JobManager& jobs, const std::string& id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    auto snapshot = jobs.Get(id);
    ASSERT_TRUE(snapshot.ok());
    if (snapshot->state != JobState::kQueued) return;
    std::this_thread::yield();
  }
  FAIL() << "job " << id << " was never dispatched";
}

TEST(JobPriorityTest, NamesRoundTrip) {
  EXPECT_STREQ(JobPriorityName(JobPriority::kInteractive), "interactive");
  EXPECT_EQ(ParseJobPriority("interactive"), JobPriority::kInteractive);
  EXPECT_EQ(ParseJobPriority("batch"), JobPriority::kBatch);
  // Unknown and empty fall back to normal.
  EXPECT_EQ(ParseJobPriority(""), JobPriority::kNormal);
  EXPECT_EQ(ParseJobPriority("bogus"), JobPriority::kNormal);
}

TEST(MultiTenantTest, FairShareDispatchFollowsWeights) {
  MetricsRegistry registry;
  SmartML framework(FastOptions());
  JobManagerOptions options;
  options.num_workers = 1;
  options.max_pending_jobs = 16;
  options.tenant_weights = {{"a", 2}, {"b", 1}};
  options.metrics = &registry;
  JobManager jobs(&framework, options);

  // Occupy the single worker so the six fair-share jobs queue up together.
  auto blocker = jobs.Submit(BlockerRequest(/*budget_seconds=*/2.0));
  ASSERT_TRUE(blocker.ok()) << blocker.status().ToString();
  WaitUntilRunning(jobs, *blocker);

  std::vector<std::pair<std::string, std::string>> submitted;  // (id, tenant)
  for (const char* tenant : {"a", "a", "a", "b", "b", "b"}) {
    auto id = jobs.Submit(FastRequest(tenant));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    submitted.emplace_back(*id, tenant);
  }
  for (const auto& [id, tenant] : submitted) {
    ASSERT_TRUE(jobs.Wait(id, 60.0).ok()) << id;
  }

  // Sort by the order jobs actually left their queues. With weights 2:1 the
  // smooth WRR sequence is a,b,a,a,b and then the drained tenant drops out.
  std::vector<std::pair<uint64_t, std::string>> order;
  for (const auto& [id, tenant] : submitted) {
    auto snapshot = jobs.Get(id);
    ASSERT_TRUE(snapshot.ok());
    ASSERT_GT(snapshot->dispatch_sequence, 0u) << id;
    order.emplace_back(snapshot->dispatch_sequence, tenant);
  }
  std::sort(order.begin(), order.end());
  std::vector<std::string> tenants;
  for (const auto& [seq, tenant] : order) tenants.push_back(tenant);
  EXPECT_EQ(tenants,
            (std::vector<std::string>{"a", "b", "a", "a", "b", "b"}));
}

TEST(MultiTenantTest, QuotaShedsWithRetryableErrorAndMetric) {
  MetricsRegistry registry;
  SmartML framework(FastOptions());
  JobManagerOptions options;
  options.num_workers = 1;
  options.max_pending_jobs = 16;
  options.default_tenant_quota = 2;
  options.metrics = &registry;
  JobManager jobs(&framework, options);

  // Two pending jobs fill tenant a's quota (one running, one queued).
  auto running = jobs.Submit(BlockerRequest(/*budget_seconds=*/2.0));
  ASSERT_TRUE(running.ok());
  WaitUntilRunning(jobs, *running);
  // The blocker belongs to the default tenant; fill tenant a explicitly.
  auto first = jobs.Submit(FastRequest("a"));
  auto second = jobs.Submit(FastRequest("a"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(jobs.TenantPending("a"), 2u);
  EXPECT_EQ(jobs.TenantQuota("a"), 2u);

  auto rejected = jobs.Submit(FastRequest("a"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().ToString().find("quota"), std::string::npos)
      << rejected.status().ToString();
  EXPECT_DOUBLE_EQ(
      registry
          .GetCounter("smartml_tenant_shed_total",
                      "Admissions rejected with 429 by tenant (quota or "
                      "global capacity).",
                      {{"tenant", "a"}})
          ->Value(),
      1.0);

  // Other tenants are unaffected by a's quota exhaustion.
  auto other = jobs.Submit(FastRequest("b"));
  EXPECT_TRUE(other.ok()) << other.status().ToString();

  // Cancelling a queued job frees quota immediately.
  ASSERT_TRUE(jobs.Cancel(*second).ok());
  EXPECT_EQ(jobs.TenantPending("a"), 1u);
  EXPECT_TRUE(jobs.Submit(FastRequest("a")).ok());
}

TEST(MultiTenantTest, CancelWhileQueuedRecordsQueueWait) {
  MetricsRegistry registry;
  SmartML framework(FastOptions());
  JobManagerOptions options;
  options.num_workers = 1;
  options.max_pending_jobs = 8;
  options.metrics = &registry;
  JobManager jobs(&framework, options);

  auto blocker = jobs.Submit(BlockerRequest(/*budget_seconds=*/2.0));
  ASSERT_TRUE(blocker.ok());
  WaitUntilRunning(jobs, *blocker);
  auto queued = jobs.Submit(FastRequest("a"));
  ASSERT_TRUE(queued.ok());

  Histogram* queue_wait = registry.GetHistogram(
      "smartml_job_queue_wait_seconds",
      "Seconds a job waited in the queue before starting or being "
      "cancelled.",
      LatencyBuckets());
  // The blocker has already been dispatched (or is about to be); only the
  // cancelled job is guaranteed to still be queued.
  const uint64_t before = queue_wait->TotalCount();
  ASSERT_TRUE(jobs.Cancel(*queued).ok());
  // A job that never ran still waited: the histogram must see its wait.
  EXPECT_EQ(queue_wait->TotalCount(), before + 1);
}

TEST(MultiTenantTest, PriorityClassesOrderWithinATenant) {
  SmartML framework(FastOptions());
  JobManagerOptions options;
  options.num_workers = 1;
  options.max_pending_jobs = 8;
  JobManager jobs(&framework, options);

  auto blocker = jobs.Submit(BlockerRequest(/*budget_seconds=*/2.0));
  ASSERT_TRUE(blocker.ok());
  WaitUntilRunning(jobs, *blocker);
  // Submitted batch-first, but the interactive job must dispatch first.
  auto batch_job = jobs.Submit(FastRequest("t", JobPriority::kBatch));
  auto normal_job = jobs.Submit(FastRequest("t", JobPriority::kNormal));
  auto interactive_job =
      jobs.Submit(FastRequest("t", JobPriority::kInteractive));
  ASSERT_TRUE(batch_job.ok());
  ASSERT_TRUE(normal_job.ok());
  ASSERT_TRUE(interactive_job.ok());
  for (const auto& id : {*batch_job, *normal_job, *interactive_job}) {
    ASSERT_TRUE(jobs.Wait(id, 60.0).ok());
  }
  const uint64_t batch_seq = jobs.Get(*batch_job)->dispatch_sequence;
  const uint64_t normal_seq = jobs.Get(*normal_job)->dispatch_sequence;
  const uint64_t interactive_seq =
      jobs.Get(*interactive_job)->dispatch_sequence;
  EXPECT_LT(interactive_seq, normal_seq);
  EXPECT_LT(normal_seq, batch_seq);
}

TEST(MultiTenantTest, BatchAdmitsUnderOneSchedulerPass) {
  MetricsRegistry registry;
  SmartML framework(FastOptions());
  JobManagerOptions options;
  options.num_workers = 1;
  options.max_pending_jobs = 16;
  options.metrics = &registry;
  JobManager jobs(&framework, options);

  Counter* passes = registry.GetCounter(
      "smartml_scheduler_passes_total",
      "Admission passes through the scheduler; a whole batch shares one.");
  const double before = passes->Value();

  std::vector<JobRequest> requests;
  for (int i = 0; i < 3; ++i) requests.push_back(FastRequest("a"));
  auto batch = jobs.SubmitBatch(std::move(requests));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_DOUBLE_EQ(passes->Value(), before + 1.0);

  ASSERT_EQ(batch->items.size(), 3u);
  for (const auto& item : batch->items) {
    ASSERT_TRUE(item.ok()) << item.status().ToString();
    EXPECT_TRUE(jobs.Get(*item).ok());
  }
  auto snapshot = jobs.GetBatch(batch->batch_id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->tenant, "a");
  ASSERT_EQ(snapshot->items.size(), 3u);
  EXPECT_EQ(snapshot->items[0].job_id, *batch->items[0]);

  EXPECT_FALSE(jobs.SubmitBatch({}).ok());
  EXPECT_FALSE(jobs.GetBatch("batch-999999").ok());
  for (const auto& item : batch->items) {
    ASSERT_TRUE(jobs.Wait(*item, 60.0).ok());
  }
}

TEST(MultiTenantTest, BatchQuotaFailuresArePerItem) {
  SmartML framework(FastOptions());
  JobManagerOptions options;
  options.num_workers = 1;
  options.max_pending_jobs = 16;
  options.tenant_quotas = {{"a", 2}};
  JobManager jobs(&framework, options);

  std::vector<JobRequest> requests;
  for (int i = 0; i < 3; ++i) requests.push_back(FastRequest("a"));
  auto batch = jobs.SubmitBatch(std::move(requests));
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->items.size(), 3u);
  EXPECT_TRUE(batch->items[0].ok());
  EXPECT_TRUE(batch->items[1].ok());
  ASSERT_FALSE(batch->items[2].ok());
  EXPECT_EQ(batch->items[2].status().code(),
            StatusCode::kResourceExhausted);

  // The retained batch snapshot keeps the per-item outcome.
  auto snapshot = jobs.GetBatch(batch->batch_id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->items[2].job_id.empty());
  EXPECT_FALSE(snapshot->items[2].error.empty());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(jobs.Wait(*batch->items[i], 60.0).ok());
  }
}

// ---------------------------------------------------------------------------
// End-to-end acceptance over loopback sockets
// ---------------------------------------------------------------------------

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// One `Connection: close` request; reads until EOF (covers SSE streams).
std::string Fetch(int port, const std::string& method, const std::string& path,
                  const std::string& body = "",
                  const std::string& extra_headers = "") {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  const std::string request =
      method + " " + path +
      " HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n" + extra_headers +
      "Connection: close\r\n\r\n" + body;
  WriteAll(fd, request);
  std::string reply;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string BodyOf(const std::string& reply) {
  const size_t split = reply.find("\r\n\r\n");
  return split == std::string::npos ? "" : reply.substr(split + 4);
}

// Value of a labelless counter in a Prometheus exposition, 0 when absent.
double CounterFrom(const std::string& exposition, const std::string& name) {
  const size_t pos = exposition.find("\n" + name + " ");
  if (pos == std::string::npos) return 0.0;
  return std::atof(exposition.c_str() + pos + 1 + name.size() + 1);
}

TEST(MultiTenantTest, EndToEndBatchesFromTwoTenantsWithUnequalQuotas) {
  SmartML framework(FastOptions());
  JobManagerOptions job_options;
  job_options.num_workers = 1;
  job_options.max_pending_jobs = 16;
  job_options.tenant_quotas = {{"team-a", 5}, {"team-b", 2}};
  job_options.tenant_weights = {{"team-a", 2}, {"team-b", 1}};
  JobManager jobs(&framework, job_options);
  RestService service(&framework, &jobs);
  HttpServerOptions server_options;
  server_options.num_workers = 2;
  HttpServer server(&service, server_options);
  service.set_http_server(&server);
  auto bound = server.Bind(0);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const int port = *bound;
  std::thread serve_thread([&] { (void)server.Serve(); });

  // Occupy the single experiment worker so both batches queue up and the
  // fair-share order is decided by the dispatcher, not submission timing.
  const std::string blocker_reply =
      Fetch(port, "POST", "/v1/runs?budget=2&evals=0", DatasetCsv());
  ASSERT_NE(blocker_reply.find("202"), std::string::npos) << blocker_reply;
  auto blocker_parsed = ParseJson(BodyOf(blocker_reply));
  ASSERT_TRUE(blocker_parsed.ok());
  const std::string blocker_id = blocker_parsed->Find("id")->string;
  WaitUntilRunning(jobs, blocker_id);

  const double passes_before = CounterFrom(
      BodyOf(Fetch(port, "GET", "/v1/metrics")),
      "smartml_scheduler_passes_total");

  // Tenant team-a: a 3-dataset batch, admitted in one scheduler pass.
  std::string batch_body = "{\"items\":[";
  for (int i = 0; i < 3; ++i) {
    if (i > 0) batch_body += ",";
    batch_body += "{\"name\":\"a_item" + std::to_string(i) +
                  "\",\"csv\":\"" +
                  JsonWriter::Escape(DatasetCsv(60 + i)) + "\"}";
  }
  batch_body += "]}";
  const std::string batch_a = Fetch(port, "POST", "/v1/batch", batch_body,
                                    "X-Tenant: team-a\r\n");
  ASSERT_NE(batch_a.find("202"), std::string::npos) << batch_a;
  auto batch_a_parsed = ParseJson(BodyOf(batch_a));
  ASSERT_TRUE(batch_a_parsed.ok());
  const std::string batch_a_id = batch_a_parsed->Find("id")->string;
  const JsonValue* a_items = batch_a_parsed->Find("items");
  ASSERT_NE(a_items, nullptr);
  ASSERT_EQ(a_items->array.size(), 3u);
  std::vector<std::pair<std::string, std::string>> runs;  // (id, tenant)
  for (const JsonValue& item : a_items->array) {
    const JsonValue* id = item.Find("id");
    ASSERT_NE(id, nullptr) << BodyOf(batch_a);
    runs.emplace_back(id->string, "team-a");
  }

  const double passes_after = CounterFrom(
      BodyOf(Fetch(port, "GET", "/v1/metrics")),
      "smartml_scheduler_passes_total");
  // The whole 3-dataset batch consumed exactly one scheduler pass.
  EXPECT_DOUBLE_EQ(passes_after, passes_before + 1.0);

  // Tenant team-b: a 2-dataset batch fills its quota of 2 exactly.
  batch_body = "{\"items\":[";
  for (int i = 0; i < 2; ++i) {
    if (i > 0) batch_body += ",";
    batch_body += "{\"name\":\"b_item" + std::to_string(i) +
                  "\",\"csv\":\"" +
                  JsonWriter::Escape(DatasetCsv(70 + i)) + "\"}";
  }
  batch_body += "]}";
  const std::string batch_b = Fetch(port, "POST", "/v1/batch", batch_body,
                                    "X-Tenant: team-b\r\n");
  ASSERT_NE(batch_b.find("202"), std::string::npos) << batch_b;
  auto batch_b_parsed = ParseJson(BodyOf(batch_b));
  ASSERT_TRUE(batch_b_parsed.ok());
  for (const JsonValue& item : batch_b_parsed->Find("items")->array) {
    const JsonValue* id = item.Find("id");
    ASSERT_NE(id, nullptr) << BodyOf(batch_b);
    runs.emplace_back(id->string, "team-b");
  }

  // team-b is now at quota: one more run sheds with 429 + Retry-After.
  const std::string shed = Fetch(port, "POST", "/v1/runs", DatasetCsv(),
                                 "X-Tenant: team-b\r\n");
  EXPECT_NE(shed.find("HTTP/1.1 429"), std::string::npos) << shed;
  EXPECT_NE(shed.find("Retry-After:"), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"resource_exhausted\""), std::string::npos) << shed;

  // Let everything finish.
  ASSERT_TRUE(jobs.Wait(blocker_id, 60.0).ok());
  for (const auto& [id, tenant] : runs) {
    auto final_snapshot = jobs.Wait(id, 60.0);
    ASSERT_TRUE(final_snapshot.ok()) << id;
    EXPECT_EQ(final_snapshot->state, JobState::kDone) << id;
  }

  // Fair-share dispatch: weights 2:1 over three a-jobs and two b-jobs give
  // the smooth-WRR order a,b,a,a,b.
  std::vector<std::pair<uint64_t, std::string>> order;
  for (const auto& [id, tenant] : runs) {
    auto snapshot = jobs.Get(id);
    ASSERT_TRUE(snapshot.ok());
    order.emplace_back(snapshot->dispatch_sequence, tenant);
  }
  std::sort(order.begin(), order.end());
  std::vector<std::string> tenants;
  for (const auto& [seq, tenant] : order) tenants.push_back(tenant);
  EXPECT_EQ(tenants, (std::vector<std::string>{"team-a", "team-b", "team-a",
                                               "team-a", "team-b"}));

  // Every run streamed at least one incumbent improvement before its
  // terminal event.
  for (const auto& [id, tenant] : runs) {
    const std::string stream =
        Fetch(port, "GET", "/v1/runs/" + id + "/events");
    const size_t incumbent = stream.find("event: incumbent");
    const size_t terminal = stream.find("event: terminal");
    ASSERT_NE(incumbent, std::string::npos) << id << "\n" << stream;
    ASSERT_NE(terminal, std::string::npos) << id << "\n" << stream;
    EXPECT_LT(incumbent, terminal) << id;
  }

  // The batch endpoint reports per-item terminal states.
  const std::string batch_view =
      Fetch(port, "GET", "/v1/batches/" + batch_a_id);
  EXPECT_NE(batch_view.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(batch_view.find("\"state\":\"done\""), std::string::npos)
      << batch_view;

  // The list endpoint filters by tenant and paginates with a cursor.
  const std::string list_a = BodyOf(
      Fetch(port, "GET", "/v1/runs?tenant=team-a&status=done"));
  auto list_a_parsed = ParseJson(list_a);
  ASSERT_TRUE(list_a_parsed.ok()) << list_a;
  EXPECT_EQ(list_a_parsed->Find("runs")->array.size(), 3u) << list_a;

  const std::string page1 =
      BodyOf(Fetch(port, "GET", "/v1/runs?tenant=team-a&limit=2"));
  auto page1_parsed = ParseJson(page1);
  ASSERT_TRUE(page1_parsed.ok());
  ASSERT_EQ(page1_parsed->Find("runs")->array.size(), 2u) << page1;
  const JsonValue* next = page1_parsed->Find("next");
  ASSERT_NE(next, nullptr) << page1;
  const std::string page2 = BodyOf(Fetch(
      port, "GET", "/v1/runs?tenant=team-a&limit=2&after=" + next->string));
  auto page2_parsed = ParseJson(page2);
  ASSERT_TRUE(page2_parsed.ok());
  EXPECT_EQ(page2_parsed->Find("runs")->array.size(), 1u) << page2;

  server.Stop();
  serve_thread.join();
}

}  // namespace
}  // namespace smartml
