// Parameterized behavioural tests over all 15 integrated classifiers, plus a
// few algorithm-specific checks. Every algorithm must: learn a separable
// problem, produce valid probability vectors, survive random hyperparameter
// configurations from its declared space, behave deterministically, and fail
// cleanly on bad input.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/data/metrics.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/ml/boosting.h"
#include "src/ml/forest.h"
#include "src/ml/lmt.h"
#include "src/ml/registry.h"
#include "src/ml/tree_classifiers.h"

namespace smartml {
namespace {

Dataset EasyBinary(uint64_t seed = 101) {
  SyntheticSpec spec;
  spec.num_instances = 140;
  spec.num_informative = 4;
  spec.num_classes = 2;
  spec.class_sep = 3.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

Dataset EasyThreeClass(uint64_t seed = 103) {
  SyntheticSpec spec;
  spec.num_instances = 180;
  spec.num_informative = 4;
  spec.num_classes = 3;
  spec.class_sep = 3.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

Dataset MixedTypes(uint64_t seed = 107) {
  SyntheticSpec spec;
  spec.num_instances = 150;
  spec.num_informative = 3;
  spec.num_categorical = 2;
  spec.num_classes = 2;
  spec.class_sep = 2.5;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

// Trains on a stratified split and returns holdout accuracy.
double HoldoutAccuracy(Classifier* model, const Dataset& data,
                       const ParamConfig& config) {
  auto split = StratifiedSplit(data, 0.3, 1);
  EXPECT_TRUE(split.ok());
  EXPECT_TRUE(model->Fit(split->train, config).ok());
  auto pred = model->Predict(split->validation);
  EXPECT_TRUE(pred.ok());
  if (!pred.ok()) return 0.0;
  return Accuracy(split->validation.labels(), *pred);
}

class AllClassifiersTest : public testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Classifier> Make() {
    auto c = CreateClassifier(GetParam());
    EXPECT_TRUE(c.ok());
    return std::move(*c);
  }
};

TEST_P(AllClassifiersTest, NameMatchesRegistry) {
  EXPECT_EQ(Make()->name(), GetParam());
}

TEST_P(AllClassifiersTest, LearnsSeparableBinaryProblem) {
  auto model = Make();
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  const double acc = HoldoutAccuracy(model.get(), EasyBinary(),
                                     space->DefaultConfig());
  EXPECT_GT(acc, 0.8) << GetParam();
}

TEST_P(AllClassifiersTest, LearnsThreeClassProblem) {
  auto model = Make();
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  const double acc = HoldoutAccuracy(model.get(), EasyThreeClass(),
                                     space->DefaultConfig());
  EXPECT_GT(acc, 0.7) << GetParam();
}

TEST_P(AllClassifiersTest, HandlesCategoricalFeatures) {
  auto model = Make();
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  const double acc = HoldoutAccuracy(model.get(), MixedTypes(),
                                     space->DefaultConfig());
  EXPECT_GT(acc, 0.65) << GetParam();
}

TEST_P(AllClassifiersTest, ProbabilitiesAreValid) {
  auto model = Make();
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  const Dataset d = EasyThreeClass();
  ASSERT_TRUE(model->Fit(d, space->DefaultConfig()).ok()) << GetParam();
  auto proba = model->PredictProba(d);
  ASSERT_TRUE(proba.ok()) << GetParam();
  ASSERT_EQ(proba->size(), d.NumRows());
  for (const auto& p : *proba) {
    ASSERT_EQ(p.size(), 3u) << GetParam();
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, -1e-9) << GetParam();
      EXPECT_LE(v, 1.0 + 1e-9) << GetParam();
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << GetParam();
  }
}

TEST_P(AllClassifiersTest, PredictArgmaxConsistentWithProba) {
  auto model = Make();
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  const Dataset d = EasyBinary();
  ASSERT_TRUE(model->Fit(d, space->DefaultConfig()).ok());
  auto pred = model->Predict(d);
  auto proba = model->PredictProba(d);
  ASSERT_TRUE(pred.ok() && proba.ok());
  size_t agree = 0;
  for (size_t r = 0; r < d.NumRows(); ++r) {
    if ((*pred)[r] == ArgMax((*proba)[r])) ++agree;
  }
  // Ties may break differently, but near-total agreement is required.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(d.NumRows()),
            0.95)
      << GetParam();
}

TEST_P(AllClassifiersTest, SurvivesRandomConfigurations) {
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  const Dataset d = EasyBinary(211);
  Rng rng(77);
  for (int i = 0; i < 3; ++i) {
    auto model = Make();
    const ParamConfig config = space->Sample(&rng);
    ASSERT_TRUE(model->Fit(d, config).ok())
        << GetParam() << " config=" << config.ToString();
    auto pred = model->Predict(d);
    ASSERT_TRUE(pred.ok()) << GetParam();
    EXPECT_EQ(pred->size(), d.NumRows());
  }
}

TEST_P(AllClassifiersTest, DeterministicGivenConfig) {
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  const Dataset d = EasyBinary(307);
  auto a = Make();
  auto b = Make();
  ASSERT_TRUE(a->Fit(d, space->DefaultConfig()).ok());
  ASSERT_TRUE(b->Fit(d, space->DefaultConfig()).ok());
  auto pa = a->Predict(d);
  auto pb = b->Predict(d);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(*pa, *pb) << GetParam();
}

TEST_P(AllClassifiersTest, PredictBeforeFitFails) {
  auto model = Make();
  EXPECT_FALSE(model->PredictProba(EasyBinary()).ok()) << GetParam();
}

TEST_P(AllClassifiersTest, SchemaMismatchRejected) {
  auto model = Make();
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  ASSERT_TRUE(model->Fit(EasyBinary(), space->DefaultConfig()).ok());
  Dataset other("wrong");
  other.AddNumericFeature("only", {1, 2, 3, 4});
  other.SetLabels({0, 1, 0, 1}, {"a", "b"});
  EXPECT_FALSE(model->PredictProba(other).ok()) << GetParam();
}

TEST_P(AllClassifiersTest, CloneIsIndependentAndUntrained) {
  auto model = Make();
  auto clone = model->Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->name(), GetParam());
  EXPECT_FALSE(clone->PredictProba(EasyBinary()).ok());
}

TEST_P(AllClassifiersTest, RefitReplacesModel) {
  auto space = SpaceFor(GetParam());
  ASSERT_TRUE(space.ok());
  auto model = Make();
  const Dataset d2 = EasyBinary();
  const Dataset d3 = EasyThreeClass();
  ASSERT_TRUE(model->Fit(d3, space->DefaultConfig()).ok());
  ASSERT_TRUE(model->Fit(d2, space->DefaultConfig()).ok());
  auto proba = model->PredictProba(d2);
  ASSERT_TRUE(proba.ok());
  EXPECT_EQ((*proba)[0].size(), 2u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(All15, AllClassifiersTest,
                         testing::ValuesIn(AllAlgorithmNames()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Algorithm-specific behaviour.
// ---------------------------------------------------------------------------

TEST(RegistryTest, ExactlyFifteenAlgorithms) {
  EXPECT_EQ(AllAlgorithms().size(), 15u);
  EXPECT_TRUE(IsKnownAlgorithm("svm"));
  EXPECT_FALSE(IsKnownAlgorithm("xgboost"));
  EXPECT_FALSE(CreateClassifier("nope").ok());
  EXPECT_FALSE(SpaceFor("nope").ok());
}

TEST(RandomForestTest, MoreTreesMoreStable) {
  const Dataset d = EasyBinary(401);
  RandomForestClassifier forest;
  ParamConfig config;
  config.SetInt("ntree", 30);
  ASSERT_TRUE(forest.Fit(d, config).ok());
  EXPECT_EQ(forest.NumTrees(), 30u);
}

TEST(RandomForestTest, ImportancesIdentifyInformativeFeatures) {
  // Deterministic construction: 3 columns carry the label signal, 3 are
  // pure noise.
  Rng rng(19);
  const size_t n = 250;
  Dataset d("imp");
  std::vector<int> labels(n);
  for (size_t r = 0; r < n; ++r) labels[r] = static_cast<int>(r % 2);
  for (int f = 0; f < 3; ++f) {
    std::vector<double> col(n);
    for (size_t r = 0; r < n; ++r) {
      col[r] = 3.0 * labels[r] + rng.Normal();
    }
    d.AddNumericFeature("inf" + std::to_string(f), std::move(col));
  }
  for (int f = 0; f < 3; ++f) {
    std::vector<double> col(n);
    for (double& v : col) v = rng.Normal();
    d.AddNumericFeature("noise" + std::to_string(f), std::move(col));
  }
  d.SetLabels(labels, {"a", "b"});
  RandomForestClassifier forest;
  ParamConfig config;
  config.SetDouble("mtry_frac", 0.5);
  ASSERT_TRUE(forest.Fit(d, config).ok());
  const auto imp = forest.FeatureImportances();
  // Mean importance of informative features > mean of noise features.
  const double inf_mean = (imp[0] + imp[1] + imp[2]) / 3.0;
  const double noise_mean = (imp[3] + imp[4] + imp[5]) / 3.0;
  EXPECT_GT(inf_mean, 1.5 * noise_mean);
}

TEST(BaggingTest, HonorsTreeCount) {
  BaggingClassifier bagging;
  ParamConfig config;
  config.SetInt("nbagg", 12);
  ASSERT_TRUE(bagging.Fit(EasyBinary(), config).ok());
  EXPECT_EQ(bagging.NumTrees(), 12u);
}

TEST(C50Test, BoostingRoundsBounded) {
  C50Classifier c50;
  ParamConfig config;
  config.SetInt("trials", 7);
  ASSERT_TRUE(c50.Fit(EasyBinary(), config).ok());
  EXPECT_LE(c50.NumRounds(), 7u);
  EXPECT_GE(c50.NumRounds(), 1u);
}

TEST(C50Test, WinnowingStillLearns) {
  C50Classifier c50;
  ParamConfig config;
  config.SetChoice("winnow", "yes");
  const double acc = HoldoutAccuracy(&c50, EasyBinary(), config);
  EXPECT_GT(acc, 0.8);
}

TEST(DeepBoostTest, LambdaPenalizesComplexTrees) {
  // With a huge lambda every tree's weight collapses; the model should still
  // hold exactly one usable round (the guard keeps the first).
  DeepBoostClassifier model;
  ParamConfig config;
  config.SetDouble("lambda", 5.0);
  config.SetDouble("beta", 0.5);
  config.SetInt("num_iter", 20);
  ASSERT_TRUE(model.Fit(EasyBinary(), config).ok());
  EXPECT_GE(model.NumRounds(), 1u);
  EXPECT_LE(model.NumRounds(), 20u);
}

TEST(PartTest, ProducesRuleList) {
  PartClassifier part;
  const Dataset d = EasyBinary();
  ASSERT_TRUE(part.Fit(d, PartClassifier::Space().DefaultConfig()).ok());
  EXPECT_GE(part.NumRules(), 2u);  // At least one rule + default.
  const auto rules = part.RuleStrings(d);
  ASSERT_FALSE(rules.empty());
  EXPECT_NE(rules.back().find("OTHERWISE"), std::string::npos);
}

TEST(LmtTest, FitsLogisticLeaves) {
  LmtClassifier lmt;
  SyntheticSpec spec;
  spec.num_instances = 250;
  spec.num_informative = 4;
  spec.num_classes = 2;
  spec.class_sep = 1.5;
  spec.clusters_per_class = 2;
  spec.seed = 23;
  const Dataset d = GenerateSynthetic(spec);
  ParamConfig config;
  config.SetInt("M", 30);
  ASSERT_TRUE(lmt.Fit(d, config).ok());
  auto pred = lmt.Predict(d);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(Accuracy(d.labels(), *pred), 0.8);
}

TEST(J48Test, UnprunedGrowsBiggerThanPruned) {
  SyntheticSpec spec;
  spec.num_instances = 300;
  spec.num_classes = 2;
  spec.label_noise = 0.2;
  spec.class_sep = 1.0;
  spec.seed = 29;
  const Dataset d = GenerateSynthetic(spec);
  J48Classifier pruned, unpruned;
  ParamConfig pc, uc;
  uc.SetChoice("unpruned", "yes");
  ASSERT_TRUE(pruned.Fit(d, pc).ok());
  ASSERT_TRUE(unpruned.Fit(d, uc).ok());
  EXPECT_LE(pruned.tree().NumLeaves(), unpruned.tree().NumLeaves());
}

}  // namespace
}  // namespace smartml
