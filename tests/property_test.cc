// Cross-cutting property sweeps: every preprocessing operator and every
// classifier is exercised against structural invariants and edge-case
// datasets (categorical-only, constant features, tiny samples, many
// classes, missing cells). These are the "does the framework survive the
// weird corners of real data" tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/data/synthetic.h"
#include "src/ml/registry.h"
#include "src/preprocess/preprocess.h"

namespace smartml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MixedReference() {
  SyntheticSpec spec;
  spec.num_instances = 120;
  spec.num_informative = 3;
  spec.num_categorical = 2;
  spec.num_classes = 3;
  spec.class_sep = 2.0;
  spec.missing_fraction = 0.03;
  spec.seed = 808;
  return GenerateSynthetic(spec);
}

// ---------------------------------------------------------------------------
// Preprocessing invariants over all 8 Table 2 operators.
// ---------------------------------------------------------------------------

class AllOpsTest : public testing::TestWithParam<PreprocessOp> {};

TEST_P(AllOpsTest, PreservesRowsAndLabels) {
  const Dataset d = MixedReference();
  auto p = CreatePreprocessor(GetParam());
  ASSERT_TRUE(p->Fit(d).ok()) << PreprocessOpName(GetParam());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok()) << PreprocessOpName(GetParam());
  EXPECT_EQ(out->NumRows(), d.NumRows());
  EXPECT_EQ(out->labels(), d.labels());
  EXPECT_EQ(out->class_names(), d.class_names());
  EXPECT_TRUE(out->Validate().ok());
}

TEST_P(AllOpsTest, TransformIsDeterministic) {
  const Dataset d = MixedReference();
  auto p = CreatePreprocessor(GetParam(), 7);
  ASSERT_TRUE(p->Fit(d).ok());
  auto a = p->Transform(d);
  auto b = p->Transform(d);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumFeatures(), b->NumFeatures());
  for (size_t f = 0; f < a->NumFeatures(); ++f) {
    for (size_t r = 0; r < a->NumRows(); ++r) {
      const double va = a->feature(f).values[r];
      const double vb = b->feature(f).values[r];
      if (std::isnan(va)) {
        EXPECT_TRUE(std::isnan(vb));
      } else {
        EXPECT_DOUBLE_EQ(va, vb);
      }
    }
  }
}

TEST_P(AllOpsTest, SurvivesCategoricalOnlyData) {
  Dataset d("cats");
  Rng rng(5);
  std::vector<double> c1(60), c2(60);
  std::vector<int> labels(60);
  for (size_t r = 0; r < 60; ++r) {
    c1[r] = static_cast<double>(rng.UniformInt(3));
    c2[r] = static_cast<double>(rng.UniformInt(2));
    labels[r] = static_cast<int>(r % 2);
  }
  d.AddCategoricalFeature("c1", c1, {"a", "b", "c"});
  d.AddCategoricalFeature("c2", c2, {"x", "y"});
  d.SetLabels(labels, {"n", "p"});
  auto p = CreatePreprocessor(GetParam(), 9);
  ASSERT_TRUE(p->Fit(d).ok()) << PreprocessOpName(GetParam());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok()) << PreprocessOpName(GetParam());
  EXPECT_GE(out->NumFeatures(), 1u);
}

TEST_P(AllOpsTest, OutputIsFiniteWhereInputWasPresent) {
  const Dataset d = MixedReference();
  auto p = CreatePreprocessor(GetParam(), 11);
  ASSERT_TRUE(p->Fit(d).ok());
  auto out = p->Transform(d);
  ASSERT_TRUE(out.ok());
  for (const auto& col : out->features()) {
    for (double v : col.values) {
      if (!std::isnan(v)) {
        EXPECT_TRUE(std::isfinite(v)) << PreprocessOpName(GetParam());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table2, AllOpsTest, testing::ValuesIn(AllPreprocessOps()),
    [](const auto& info) { return std::string(PreprocessOpName(info.param)); });

// ---------------------------------------------------------------------------
// Classifier edge cases over all 15 algorithms.
// ---------------------------------------------------------------------------

class ClassifierEdgeTest : public testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Classifier> Make() {
    auto c = CreateClassifier(GetParam());
    EXPECT_TRUE(c.ok());
    return std::move(*c);
  }
  ParamConfig Default() {
    auto space = SpaceFor(GetParam());
    EXPECT_TRUE(space.ok());
    return space->DefaultConfig();
  }
};

TEST_P(ClassifierEdgeTest, SurvivesConstantFeature) {
  SyntheticSpec spec;
  spec.num_instances = 90;
  spec.num_informative = 3;
  spec.class_sep = 2.5;
  spec.seed = 901;
  Dataset d = GenerateSynthetic(spec);
  d.AddNumericFeature("constant", std::vector<double>(d.NumRows(), 1.0));
  auto model = Make();
  ASSERT_TRUE(model->Fit(d, Default()).ok()) << GetParam();
  auto pred = model->Predict(d);
  ASSERT_TRUE(pred.ok()) << GetParam();
}

TEST_P(ClassifierEdgeTest, SurvivesTinySample) {
  // 12 rows, 2 classes: must fit and predict without crashing; accuracy is
  // not asserted.
  SyntheticSpec spec;
  spec.num_instances = 12;
  spec.num_informative = 2;
  spec.class_sep = 3.0;
  spec.seed = 902;
  const Dataset d = GenerateSynthetic(spec);
  auto model = Make();
  ASSERT_TRUE(model->Fit(d, Default()).ok()) << GetParam();
  auto proba = model->PredictProba(d);
  ASSERT_TRUE(proba.ok()) << GetParam();
  EXPECT_EQ(proba->size(), 12u);
}

TEST_P(ClassifierEdgeTest, SurvivesManyClasses) {
  SyntheticSpec spec;
  spec.num_instances = 240;
  spec.num_informative = 5;
  spec.num_classes = 12;
  spec.class_sep = 2.5;
  spec.seed = 903;
  const Dataset d = GenerateSynthetic(spec);
  auto model = Make();
  ASSERT_TRUE(model->Fit(d, Default()).ok()) << GetParam();
  auto proba = model->PredictProba(d);
  ASSERT_TRUE(proba.ok()) << GetParam();
  EXPECT_EQ((*proba)[0].size(), 12u);
}

TEST_P(ClassifierEdgeTest, PredictsOnRowsWithMissingValues) {
  // Trained on complete data, asked to predict rows containing NaN: every
  // classifier must produce *some* valid distribution (imputation/routing
  // is the classifier's internal business).
  SyntheticSpec spec;
  spec.num_instances = 100;
  spec.num_informative = 4;
  spec.class_sep = 2.5;
  spec.seed = 904;
  const Dataset train = GenerateSynthetic(spec);
  auto model = Make();
  ASSERT_TRUE(model->Fit(train, Default()).ok()) << GetParam();

  Dataset test = train.Subset({0, 1, 2, 3, 4});
  test.mutable_feature(0).values[0] = kNaN;
  test.mutable_feature(2).values[1] = kNaN;
  auto proba = model->PredictProba(test);
  ASSERT_TRUE(proba.ok()) << GetParam();
  for (const auto& p : *proba) {
    double sum = 0;
    for (double v : p) {
      EXPECT_TRUE(std::isfinite(v)) << GetParam();
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << GetParam();
  }
}

TEST_P(ClassifierEdgeTest, ImbalancedDataStillFavorsMajorityOverChance) {
  SyntheticSpec spec;
  spec.num_instances = 150;
  spec.num_informative = 3;
  spec.num_classes = 3;
  spec.imbalance = 0.4;  // Heavy skew.
  spec.class_sep = 2.0;
  spec.seed = 905;
  const Dataset d = GenerateSynthetic(spec);
  auto model = Make();
  ASSERT_TRUE(model->Fit(d, Default()).ok()) << GetParam();
  auto pred = model->Predict(d);
  ASSERT_TRUE(pred.ok());
  size_t correct = 0;
  for (size_t r = 0; r < d.NumRows(); ++r) {
    if ((*pred)[r] == d.label(r)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(d.NumRows()),
            1.0 / 3.0)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(All15, ClassifierEdgeTest,
                         testing::ValuesIn(AllAlgorithmNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace smartml
