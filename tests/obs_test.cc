// Tests for the observability subsystem: lock-cheap metric primitives under
// concurrent hammering (exact totals — run these under ThreadSanitizer),
// histogram bucket semantics, the Prometheus text encoder, and the
// GET /v1/metrics exposition through the REST routing layer.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/api/rest.h"
#include "src/core/smartml.h"
#include "src/obs/metrics.h"

namespace smartml {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20000;

TEST(ObsCounterTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("obs_test_hits_total", "help");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kOpsPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsCounterTest, ConcurrentRegistrationYieldsOneSeries) {
  // Threads race to register the same (name, labels); all must get the same
  // cell so no increment is lost to a shadow counter.
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry
            .GetCounter("obs_test_raced_total", "help", {{"k", "v"}})
            ->Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("obs_test_raced_total", "help", {{"k", "v"}})
                ->Value(),
            static_cast<uint64_t>(kThreads) * 1000);
}

TEST(ObsGaugeTest, ConcurrentUpDownBalances) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("obs_test_depth", "help");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        gauge->Increment();
        gauge->Decrement();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(ObsHistogramTest, ConcurrentObservationsAreExact) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("obs_test_seconds", "help", {1.0, 2.0, 5.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        histogram->Observe(1.0);  // Integer-valued: the sum stays exact.
        histogram->Observe(4.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const uint64_t per_value = static_cast<uint64_t>(kThreads) * kOpsPerThread;
  const Histogram::Snapshot snapshot = histogram->TakeSnapshot();
  EXPECT_EQ(snapshot.count, 2 * per_value);
  EXPECT_DOUBLE_EQ(snapshot.sum, 5.0 * static_cast<double>(per_value));
  ASSERT_EQ(snapshot.cumulative.size(), 4u);  // 3 bounds + Inf.
  EXPECT_EQ(snapshot.cumulative[0], per_value);      // le=1: the 1.0s.
  EXPECT_EQ(snapshot.cumulative[1], per_value);      // le=2: still just 1.0s.
  EXPECT_EQ(snapshot.cumulative[2], 2 * per_value);  // le=5: plus the 4.0s.
  EXPECT_EQ(snapshot.cumulative[3], 2 * per_value);  // +Inf.
}

TEST(ObsHistogramTest, BucketBoundsAreInclusive) {
  // Prometheus le semantics: a value equal to a bound counts in that bucket.
  Histogram histogram({1.0, 2.0, 5.0});
  histogram.Observe(0.5);   // le=1
  histogram.Observe(1.0);   // le=1 (exactly on the bound)
  histogram.Observe(2.0);   // le=2 (exactly on the bound)
  histogram.Observe(2.001); // le=5
  histogram.Observe(5.0);   // le=5 (exactly on the bound)
  histogram.Observe(9.0);   // +Inf
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  ASSERT_EQ(snapshot.cumulative.size(), 4u);
  EXPECT_EQ(snapshot.cumulative[0], 2u);
  EXPECT_EQ(snapshot.cumulative[1], 3u);
  EXPECT_EQ(snapshot.cumulative[2], 5u);
  EXPECT_EQ(snapshot.cumulative[3], 6u);
  EXPECT_EQ(snapshot.count, 6u);
}

TEST(ObsHistogramTest, BoundsAreSortedAndDeduplicated) {
  Histogram histogram({5.0, 1.0, 5.0, 2.0});
  EXPECT_EQ(histogram.bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
}

TEST(ObsRegistryTest, LabelsCanonicalizeByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("obs_test_labeled_total", "help",
                                   {{"b", "2"}, {"a", "1"}});
  Counter* b = registry.GetCounter("obs_test_labeled_total", "help",
                                   {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
  Counter* c = registry.GetCounter("obs_test_labeled_total", "help",
                                   {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(a, c);
}

TEST(ObsRegistryTest, TypeMismatchReturnsDetachedDummy) {
  MetricsRegistry registry;
  registry.GetCounter("obs_test_conflict", "help")->Increment(7);
  Gauge* dummy = registry.GetGauge("obs_test_conflict", "help");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(99);  // Dropped: must not leak into the counter family.
  const std::string text = registry.EncodePrometheus();
  EXPECT_NE(text.find("obs_test_conflict 7\n"), std::string::npos);
  EXPECT_EQ(text.find("99"), std::string::npos);
}

TEST(ObsRegistryTest, PrometheusEncodingGolden) {
  MetricsRegistry registry;
  registry.GetCounter("a_requests_total", "Requests.", {{"code", "2xx"}})
      ->Increment(3);
  registry.GetGauge("b_depth", "Depth.")->Set(-2);
  Histogram* histogram =
      registry.GetHistogram("c_seconds", "Latency.", {0.5, 1.0});
  histogram->Observe(0.25);
  histogram->Observe(0.75);
  histogram->Observe(4.0);
  const std::string expected =
      "# HELP a_requests_total Requests.\n"
      "# TYPE a_requests_total counter\n"
      "a_requests_total{code=\"2xx\"} 3\n"
      "# HELP b_depth Depth.\n"
      "# TYPE b_depth gauge\n"
      "b_depth -2\n"
      "# HELP c_seconds Latency.\n"
      "# TYPE c_seconds histogram\n"
      "c_seconds_bucket{le=\"0.5\"} 1\n"
      "c_seconds_bucket{le=\"1\"} 2\n"
      "c_seconds_bucket{le=\"+Inf\"} 3\n"
      "c_seconds_sum 5\n"
      "c_seconds_count 3\n";
  EXPECT_EQ(registry.EncodePrometheus(), expected);
}

TEST(ObsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("d_total", "help", {{"path", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.EncodePrometheus();
  EXPECT_NE(text.find("d_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(ObsRestTest, MetricsEndpointServesExposition) {
  SmartML framework;
  MetricsRegistry registry;
  registry.GetCounter("e_total", "help")->Increment(5);
  RestService service(&framework, /*jobs=*/nullptr, &registry);

  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/metrics";
  const HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(response.body.find("# TYPE e_total counter"), std::string::npos);
  EXPECT_NE(response.body.find("e_total 5\n"), std::string::npos);

  request.method = "POST";
  EXPECT_EQ(service.Handle(request).status, 405);
}

TEST(ObsRestTest, HealthReportsObservabilityGauges) {
  SmartML framework;
  MetricsRegistry registry;
  RestService service(&framework, /*jobs=*/nullptr, &registry);
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/health";
  const HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"kb\""), std::string::npos);
  EXPECT_NE(response.body.find("\"updates_total\""), std::string::npos);
  EXPECT_NE(response.body.find("\"lookups_total\""), std::string::npos);
}

}  // namespace
}  // namespace smartml
